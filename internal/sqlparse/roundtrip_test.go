package sqlparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomQueryRoundTrip generates random queries of the paper's query
// class, renders them to SQL, re-parses, and checks structural equality —
// a generative cross-check of the lexer, parser, and printers.
func TestRandomQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	attrs := []string{"a", "b", "c", "d"}

	var build func(depth int) Expr
	build = func(depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return &Pred{
				Attr: attrs[rng.Intn(len(attrs))],
				Op:   ops[rng.Intn(len(ops))],
				Val:  int64(rng.Intn(2001) - 1000),
			}
		}
		k := 2 + rng.Intn(3)
		kids := make([]Expr, k)
		for i := range kids {
			kids[i] = build(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return NewAnd(kids...)
		}
		return NewOr(kids...)
	}

	for trial := 0; trial < 500; trial++ {
		q := &Query{Tables: []string{"t"}, Where: build(1 + rng.Intn(3))}
		src := q.String()
		q2, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: re-parse of %q: %v", trial, src, err)
		}
		if got := q2.String(); got != src {
			t.Fatalf("trial %d: round trip changed query:\n  %s\n  %s", trial, src, got)
		}
		// Semantics must also survive: evaluate both trees on random rows.
		for probe := 0; probe < 20; probe++ {
			row := map[string]int64{}
			for _, a := range attrs {
				row[a] = int64(rng.Intn(2001) - 1000)
			}
			if evalExpr(q.Where, row) != evalExpr(q2.Where, row) {
				t.Fatalf("trial %d: semantics changed for %s", trial, src)
			}
		}
	}
}

// TestRandomJoinQueryRoundTrip does the same for star-join queries.
func TestRandomJoinQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	sats := []string{"s1", "s2", "s3"}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		q := &Query{Tables: []string{"hub"}}
		for i := 0; i < n; i++ {
			q.Tables = append(q.Tables, sats[i])
			q.Joins = append(q.Joins, JoinPred{
				LeftTable: sats[i], LeftCol: "hub_id", RightTable: "hub", RightCol: "id",
			})
		}
		var conj []Expr
		for i := 0; i <= rng.Intn(3); i++ {
			tbl := q.Tables[rng.Intn(len(q.Tables))]
			conj = append(conj, &Pred{
				Attr: fmt.Sprintf("%s.x", tbl),
				Op:   OpGe,
				Val:  int64(rng.Intn(100)),
			})
		}
		q.Where = NewAnd(conj...)
		src := q.String()
		q2, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: re-parse of %q: %v", trial, src, err)
		}
		if len(q2.Joins) != len(q.Joins) {
			t.Fatalf("trial %d: joins changed: %d vs %d", trial, len(q2.Joins), len(q.Joins))
		}
		if got := q2.String(); got != src {
			t.Fatalf("trial %d: round trip changed query:\n  %s\n  %s", trial, src, got)
		}
	}
}
