// Package engine implements the end-to-end substrate for the paper's
// Table 4: a cost-based join-order optimizer whose decisions are driven by
// an injected cardinality estimator, plus a real executor whose measured
// wall time reflects the chosen plan.
//
// The paper integrates its estimator into PostgreSQL and reports JOB-light
// run times under (a) PostgreSQL's own estimates, (b) the learned estimates,
// and (c) true cardinalities, observing only a small spread because the
// optimizer's search space is limited. This reproduction rebuilds the same
// mechanism at star-schema scale: selections are always pushed down, the
// only optimizer freedom is the satellite join order, and better cardinality
// estimates can only shave the probe work of intermediate results —
// reproducing the "defensive optimizer" effect rather than assuming it.
package engine

import (
	"context"
	"fmt"
	"math"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/resilience"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Plan is a left-deep join order over a star query: the hub table first,
// then the satellites in join order.
type Plan struct {
	Hub        string
	Satellites []string
	// EstCost is the optimizer's estimated total cost of the plan.
	EstCost float64
	// DegradedEstimates counts cardinality requests the estimator failed
	// and the optimizer replaced with the row-count heuristic (only when
	// Optimizer.Degrade is set). A plan built from degraded estimates is
	// worse, not wrong: execution still produces the exact count.
	DegradedEstimates int
}

// String renders the join order.
func (p *Plan) String() string {
	s := p.Hub
	for _, sat := range p.Satellites {
		s += " ⋈ " + sat
	}
	return s
}

// Optimizer chooses join orders using cardinality estimates from Est.
type Optimizer struct {
	DB  *table.DB
	Est estimator.Estimator
	// Degrade makes planning resilient to estimator failures: when set, a
	// failed (or non-finite) cardinality estimate is replaced by the
	// resilience.RowCount heuristic instead of aborting the plan — a bad
	// estimate degrades the join order, never the query. Wrapping Est in
	// resilience.NewResilient achieves the same end-to-end with deadlines
	// and circuit breaking on top; Degrade is the engine's own safety net
	// for plain estimators.
	Degrade bool
}

// ChoosePlan picks the cheapest left-deep satellite order for the star
// query q by dynamic programming over satellite subsets. The cost of a join
// step is |probe input| + |build side| + |output|, all under Est's
// estimates; cardinalities per subset are requested once and memoized.
func (o *Optimizer) ChoosePlan(q *sqlparse.Query) (*Plan, error) {
	return o.ChoosePlanCtx(context.Background(), q)
}

// ChoosePlanCtx is ChoosePlan under a context: the deadline is threaded into
// every cardinality estimate (context-aware estimators stop early). With
// Degrade set, a spent deadline degrades the remaining estimates rather than
// failing the plan.
func (o *Optimizer) ChoosePlanCtx(ctx context.Context, q *sqlparse.Query) (*Plan, error) {
	hub, sats, err := starShape(q)
	if err != nil {
		return nil, err
	}
	if len(sats) == 0 {
		return &Plan{Hub: hub}, nil
	}
	n := len(sats)
	if n > 16 {
		return nil, fmt.Errorf("engine: %d satellites exceed the optimizer's subset budget", n)
	}

	degraded := 0
	// Memoized estimates: card[mask] is the estimated cardinality of the
	// sub-join of hub + the satellites in mask; satCard[i] the estimated
	// filtered size of satellite i alone.
	card := make([]float64, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		sub, err := subQuery(q, hub, sats, mask)
		if err != nil {
			return nil, err
		}
		c, err := o.estimate(ctx, sub, &degraded)
		if err != nil {
			return nil, fmt.Errorf("engine: estimate for %v: %w", sub.Tables, err)
		}
		card[mask] = c
	}
	satCard := make([]float64, n)
	for i, s := range sats {
		sub, err := singleTableQuery(q, s)
		if err != nil {
			return nil, err
		}
		c, err := o.estimate(ctx, sub, &degraded)
		if err != nil {
			return nil, fmt.Errorf("engine: estimate for %s: %w", s, err)
		}
		satCard[i] = c
	}

	// DP over subsets: best[mask] = cheapest cost to have joined the
	// satellites in mask; choice[mask] = last satellite joined.
	best := make([]float64, 1<<n)
	choice := make([]int, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		best[mask] = math.Inf(1)
		for i := 0; i < n; i++ {
			bit := 1 << i
			if mask&bit == 0 {
				continue
			}
			prev := mask &^ bit
			stepCost := card[prev] + satCard[i] + card[mask]
			if c := best[prev] + stepCost; c < best[mask] {
				best[mask] = c
				choice[mask] = i
			}
		}
	}

	// Reconstruct the order.
	order := make([]string, 0, n)
	for mask := 1<<n - 1; mask != 0; {
		i := choice[mask]
		order = append(order, sats[i])
		mask &^= 1 << i
	}
	// Reverse: reconstruction walked from the full set backwards.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return &Plan{Hub: hub, Satellites: order, EstCost: best[1<<n-1], DegradedEstimates: degraded}, nil
}

// estimate requests one cardinality under ctx. With Degrade set, estimator
// errors and non-finite results fall back to the row-count heuristic and are
// counted; otherwise they propagate.
func (o *Optimizer) estimate(ctx context.Context, sub *sqlparse.Query, degraded *int) (float64, error) {
	c, err := estimator.EstimateWithContext(ctx, o.Est, sub)
	if err == nil && !math.IsNaN(c) && !math.IsInf(c, 0) && c >= 0 {
		if c < 1 {
			c = 1
		}
		return c, nil
	}
	if !o.Degrade {
		if err == nil {
			err = fmt.Errorf("engine: non-finite estimate %v", c)
		}
		return 0, err
	}
	*degraded++
	c, _ = resilience.RowCount{DB: o.DB}.Estimate(sub)
	return c, nil
}

// ExecStats reports what executing a plan actually did.
type ExecStats struct {
	// Count is the query result (COUNT(*)).
	Count int64
	// ProbeTuples is the total number of intermediate-result entries probed
	// across all join steps — the work a better plan reduces.
	ProbeTuples int64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// Execute runs the plan: filter the hub, then hash-join the satellites in
// plan order, keeping intermediates multiplicity-compressed (hub key ->
// tuple count). Each join step scans its satellite once (build side) and
// probes every surviving intermediate entry, so measured time genuinely
// depends on how quickly the chosen order shrinks the intermediate.
func Execute(db *table.DB, q *sqlparse.Query, plan *Plan) (ExecStats, error) {
	start := time.Now()
	var stats ExecStats

	perTable, err := splitFilters(q)
	if err != nil {
		return stats, err
	}
	hubTbl := db.Table(plan.Hub)
	if hubTbl == nil {
		return stats, fmt.Errorf("engine: unknown table %q", plan.Hub)
	}
	// Filter the hub.
	bm, err := exec.EvalExpr(hubTbl, perTable[plan.Hub])
	if err != nil {
		return stats, err
	}
	if len(plan.Satellites) == 0 {
		stats.Count = int64(bm.Count())
		stats.Elapsed = time.Since(start)
		return stats, nil
	}
	hubKeyCol, err := hubKeyColumn(q, plan.Hub)
	if err != nil {
		return stats, err
	}

	// Materialize the intermediate as key -> multiplicity.
	inter := make(map[int64]int64, bm.Count())
	keyVals := hubTbl.Column(hubKeyCol).Vals
	bm.ForEach(func(r int) { inter[keyVals[r]]++ })

	for _, satName := range plan.Satellites {
		sat := db.Table(satName)
		if sat == nil {
			return stats, fmt.Errorf("engine: unknown table %q", satName)
		}
		fkCol, err := satFKColumn(q, satName)
		if err != nil {
			return stats, err
		}
		// Build side: scan the filtered satellite into key -> count.
		sbm, err := exec.EvalExpr(sat, perTable[satName])
		if err != nil {
			return stats, err
		}
		build := make(map[int64]int64, sbm.Count())
		fkVals := sat.Column(fkCol).Vals
		sbm.ForEach(func(r int) { build[fkVals[r]]++ })

		// Probe side: every surviving intermediate entry.
		for key, mult := range inter {
			stats.ProbeTuples++
			if cnt := build[key]; cnt == 0 {
				delete(inter, key)
			} else {
				inter[key] = mult * cnt
			}
		}
	}

	for _, mult := range inter {
		stats.Count += mult
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// RunWorkload optimizes and executes every query, returning the summed
// wall time and stats — one cell of Table 4.
func RunWorkload(db *table.DB, opt *Optimizer, queries []*sqlparse.Query) (time.Duration, []ExecStats, error) {
	return RunWorkloadCtx(context.Background(), db, opt, queries)
}

// RunWorkloadCtx is RunWorkload under a context. The context bounds
// planning (estimation); execution of an already-chosen plan runs to
// completion so results stay exact.
func RunWorkloadCtx(ctx context.Context, db *table.DB, opt *Optimizer, queries []*sqlparse.Query) (time.Duration, []ExecStats, error) {
	var total time.Duration
	stats := make([]ExecStats, len(queries))
	for i, q := range queries {
		plan, err := opt.ChoosePlanCtx(ctx, q)
		if err != nil {
			return 0, nil, fmt.Errorf("engine: plan query %d: %w", i, err)
		}
		st, err := Execute(db, q, plan)
		if err != nil {
			return 0, nil, fmt.Errorf("engine: execute query %d: %w", i, err)
		}
		stats[i] = st
		total += st.Elapsed
	}
	return total, stats, nil
}

// starShape validates that q is a star join and returns the hub plus the
// satellites. Every join predicate must involve a common hub table.
func starShape(q *sqlparse.Query) (hub string, sats []string, err error) {
	if len(q.Tables) == 1 {
		return q.Tables[0], nil, nil
	}
	counts := make(map[string]int)
	for _, j := range q.Joins {
		counts[j.LeftTable]++
		counts[j.RightTable]++
	}
	for t, c := range counts {
		if c == len(q.Joins) {
			hub = t
			break
		}
	}
	if hub == "" {
		return "", nil, fmt.Errorf("engine: query %v is not a star join", q.Tables)
	}
	for _, t := range q.Tables {
		if t != hub {
			sats = append(sats, t)
		}
	}
	return hub, sats, nil
}

// subQuery builds the sub-join of hub plus the satellites selected by mask,
// with their selections and join predicates.
func subQuery(q *sqlparse.Query, hub string, sats []string, mask int) (*sqlparse.Query, error) {
	in := map[string]bool{hub: true}
	tables := []string{hub}
	for i, s := range sats {
		if mask&(1<<i) != 0 {
			in[s] = true
			tables = append(tables, s)
		}
	}
	sub := &sqlparse.Query{Tables: tables}
	for _, j := range q.Joins {
		if in[j.LeftTable] && in[j.RightTable] {
			sub.Joins = append(sub.Joins, j)
		}
	}
	perTable, err := splitFilters(q)
	if err != nil {
		return nil, err
	}
	var keep []sqlparse.Expr
	for _, t := range tables {
		if e := perTable[t]; e != nil {
			keep = append(keep, e)
		}
	}
	sub.Where = sqlparse.NewAnd(keep...)
	return sub, nil
}

// singleTableQuery extracts the selection on one table as a standalone
// query, stripping the table qualifier from attribute names.
func singleTableQuery(q *sqlparse.Query, tbl string) (*sqlparse.Query, error) {
	perTable, err := splitFilters(q)
	if err != nil {
		return nil, err
	}
	sub := &sqlparse.Query{Tables: []string{tbl}}
	if e := perTable[tbl]; e != nil {
		sub.Where = sqlparse.CloneExpr(e)
	}
	return sub, nil
}

// splitFilters groups q's selection conjuncts by table.
func splitFilters(q *sqlparse.Query) (map[string]sqlparse.Expr, error) {
	single := ""
	if len(q.Tables) == 1 {
		single = q.Tables[0]
	}
	byTable := make(map[string][]sqlparse.Expr)
	for _, kid := range sqlparse.Conjuncts(q.Where) {
		tbl := ""
		for _, p := range sqlparse.CollectPreds(kid) {
			pt := tableOf(p.Attr, single)
			if pt == "" {
				return nil, fmt.Errorf("engine: unqualified attribute %q in join query", p.Attr)
			}
			if tbl == "" {
				tbl = pt
			} else if tbl != pt {
				return nil, fmt.Errorf("engine: conjunct %q spans tables", kid)
			}
		}
		byTable[tbl] = append(byTable[tbl], kid)
	}
	out := make(map[string]sqlparse.Expr, len(byTable))
	for t, kids := range byTable {
		out[t] = sqlparse.NewAnd(kids...)
	}
	return out, nil
}

func tableOf(attr, single string) string {
	for i := 0; i < len(attr); i++ {
		if attr[i] == '.' {
			return attr[:i]
		}
	}
	return single
}

// hubKeyColumn finds the hub-side join column (title.id in the IMDb star).
func hubKeyColumn(q *sqlparse.Query, hub string) (string, error) {
	for _, j := range q.Joins {
		if j.LeftTable == hub {
			return j.LeftCol, nil
		}
		if j.RightTable == hub {
			return j.RightCol, nil
		}
	}
	if len(q.Tables) == 1 {
		return "", nil
	}
	return "", fmt.Errorf("engine: no join touches hub %q", hub)
}

// satFKColumn finds the satellite-side join column.
func satFKColumn(q *sqlparse.Query, sat string) (string, error) {
	for _, j := range q.Joins {
		if j.LeftTable == sat {
			return j.LeftCol, nil
		}
		if j.RightTable == sat {
			return j.RightCol, nil
		}
	}
	return "", fmt.Errorf("engine: no join touches satellite %q", sat)
}
