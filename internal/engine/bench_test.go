package engine

import (
	"testing"

	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
)

// BenchmarkChoosePlan measures the optimizer's planning cost for a 5-way
// star join under the independence estimator — the per-query overhead a
// cardinality estimator adds to optimization.
func BenchmarkChoosePlan(b *testing.B) {
	db, err := dataset.IMDB(dataset.IMDBConfig{Titles: 2_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info, movie_info, movie_companies, movie_keyword
		WHERE cast_info.movie_id = title.id AND movie_info.movie_id = title.id
		AND movie_companies.movie_id = title.id AND movie_keyword.movie_id = title.id
		AND title.production_year >= 1990 AND cast_info.role_id = 1`)
	opt := &Optimizer{DB: db, Est: &estimator.Independence{DB: db}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.ChoosePlan(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutePlan measures plan execution (filter + hash joins) for
// the same query.
func BenchmarkExecutePlan(b *testing.B) {
	db, err := dataset.IMDB(dataset.IMDBConfig{Titles: 2_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info, movie_keyword
		WHERE cast_info.movie_id = title.id AND movie_keyword.movie_id = title.id
		AND title.production_year >= 1990`)
	opt := &Optimizer{DB: db, Est: &estimator.Independence{DB: db}}
	plan, err := opt.ChoosePlan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(db, q, plan); err != nil {
			b.Fatal(err)
		}
	}
}
