package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/resilience"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func testDB(t *testing.T) *table.DB {
	t.Helper()
	db, err := dataset.IMDB(dataset.IMDBConfig{Titles: 800, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecuteMatchesExactCount(t *testing.T) {
	db := testDB(t)
	schema := dataset.IMDBSchema()
	cfg := workload.DefaultJOBLightConfig()
	cfg.Count = 25
	cfg.Seed = 99
	set, err := workload.JOBLight(db, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}}
	for i, l := range set {
		plan, err := opt.ChoosePlan(l.Query)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		st, err := Execute(db, l.Query, plan)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if st.Count != l.Card {
			t.Fatalf("query %d: plan count %d != true %d (%s; plan %s)", i, st.Count, l.Card, l.Query, plan)
		}
	}
}

func TestExecuteResultIndependentOfPlan(t *testing.T) {
	// Any satellite permutation must produce the same count; only the work
	// differs. Compare the oracle-chosen plan against the reversed order.
	db := testDB(t)
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info, movie_keyword, movie_companies
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND title.id = movie_companies.movie_id AND title.production_year >= 1990
		AND cast_info.role_id = 1`)
	want, err := exec.Count(db, q)
	if err != nil {
		t.Fatal(err)
	}
	opt := &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}}
	plan, err := opt.ChoosePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Execute(db, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != want {
		t.Fatalf("optimized plan count %d, want %d", st.Count, want)
	}
	rev := &Plan{Hub: plan.Hub, Satellites: reverse(plan.Satellites)}
	st2, err := Execute(db, q, rev)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count != want {
		t.Fatalf("reversed plan count %d, want %d", st2.Count, want)
	}
}

func reverse(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

func TestOptimizerPrefersSelectiveSatelliteFirst(t *testing.T) {
	// With true cardinalities, the optimizer should join the most
	// selective satellite early; verify it never probes more tuples than
	// the worst permutation.
	db := testDB(t)
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND cast_info.role_id = 9 AND title.production_year >= 1950`)
	opt := &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}}
	plan, err := opt.ChoosePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := Execute(db, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	worstProbe := chosen.ProbeTuples
	perms := [][]string{
		{"cast_info", "movie_keyword"},
		{"movie_keyword", "cast_info"},
	}
	for _, p := range perms {
		st, err := Execute(db, q, &Plan{Hub: "title", Satellites: p})
		if err != nil {
			t.Fatal(err)
		}
		if st.ProbeTuples > worstProbe {
			worstProbe = st.ProbeTuples
		}
		if st.Count != chosen.Count {
			t.Fatal("permutation changed the result")
		}
	}
	if chosen.ProbeTuples > worstProbe {
		t.Errorf("oracle-guided plan probes %d tuples, worse than worst permutation %d", chosen.ProbeTuples, worstProbe)
	}
}

func TestChoosePlanSingleTable(t *testing.T) {
	db := testDB(t)
	q := sqlparse.MustParse("SELECT count(*) FROM title WHERE kind_id = 1")
	opt := &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}}
	plan, err := opt.ChoosePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Hub != "title" || len(plan.Satellites) != 0 {
		t.Fatalf("single-table plan = %s", plan)
	}
	st, err := Execute(db, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Count(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != want {
		t.Errorf("count %d, want %d", st.Count, want)
	}
}

// brokenEst fails on every multi-table estimate and panics on single-table
// ones — the worst-behaved estimator the optimizer could be handed.
type brokenEst struct{}

func (brokenEst) Name() string { return "broken" }

func (brokenEst) Estimate(q *sqlparse.Query) (float64, error) {
	if len(q.Tables) > 1 {
		return 0, fmt.Errorf("model unavailable")
	}
	panic("model corrupted")
}

func TestChoosePlanDegradesOnFailingEstimator(t *testing.T) {
	db := testDB(t)
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND cast_info.role_id = 1 AND title.production_year >= 1980`)
	want, err := exec.Count(db, q)
	if err != nil {
		t.Fatal(err)
	}

	// Without Degrade, a failing estimator aborts planning (panics are only
	// absorbed by the resilience wrapper, so use the erroring path).
	strict := &Optimizer{DB: db, Est: &estimator.Independence{DB: table.NewDB()}}
	if _, err := strict.ChoosePlan(q); err == nil {
		t.Fatal("strict optimizer accepted a failing estimator")
	}

	// With Degrade, the same estimator produces a (worse) plan whose
	// execution is still exact.
	degrading := &Optimizer{DB: db, Est: &estimator.Independence{DB: table.NewDB()}, Degrade: true}
	plan, err := degrading.ChoosePlan(q)
	if err != nil {
		t.Fatalf("degrading optimizer aborted: %v", err)
	}
	if plan.DegradedEstimates == 0 {
		t.Error("no degraded estimates counted for an always-failing estimator")
	}
	st, err := Execute(db, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != want {
		t.Fatalf("degraded plan count %d, want %d", st.Count, want)
	}
}

func TestOptimizerWithResilientEstimatorNeverAborts(t *testing.T) {
	// The intended production wiring: the estimator is wrapped in the
	// resilience chain, so even an estimator that errors AND panics yields
	// a plan — without the optimizer's own Degrade net.
	db := testDB(t)
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND cast_info.role_id = 1 AND title.production_year >= 1980`)
	want, err := exec.Count(db, q)
	if err != nil {
		t.Fatal(err)
	}
	res := resilience.NewResilient(resilience.Config{
		LastResort: resilience.RowCount{DB: db},
	}, resilience.Stage{Name: "broken", Est: brokenEst{}})
	opt := &Optimizer{DB: db, Est: res}
	plan, err := opt.ChoosePlanCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("resilient optimizer aborted: %v", err)
	}
	st, err := Execute(db, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != want {
		t.Fatalf("plan count %d, want %d", st.Count, want)
	}
	stats := res.Stats()
	if stats[0].Failed == 0 {
		t.Error("broken stage never charged — the chain was not exercised")
	}
}

func TestChoosePlanCtxHonorsSpentDeadline(t *testing.T) {
	db := testDB(t)
	q := sqlparse.MustParse(`SELECT count(*) FROM title, cast_info
		WHERE title.id = cast_info.movie_id AND cast_info.role_id = 1`)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	// Strict: a spent deadline aborts planning.
	strict := &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}}
	if _, err := strict.ChoosePlanCtx(ctx, q); err == nil {
		t.Fatal("spent deadline did not abort strict planning")
	}

	// Degrading: the plan is built entirely from heuristic estimates.
	degrading := &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}, Degrade: true}
	plan, err := degrading.ChoosePlanCtx(ctx, q)
	if err != nil {
		t.Fatalf("degrading planner aborted on a spent deadline: %v", err)
	}
	if plan.DegradedEstimates == 0 {
		t.Error("spent deadline produced no degraded estimates")
	}
}

func TestStarShapeRejectsNonStar(t *testing.T) {
	// A chain a-b-c is not a star with a common hub... except length-2
	// chains; build a 3-join chain via distinct tables.
	q := &sqlparse.Query{
		Tables: []string{"a", "b", "c", "d"},
		Joins: []sqlparse.JoinPred{
			{LeftTable: "a", LeftCol: "x", RightTable: "b", RightCol: "x"},
			{LeftTable: "b", LeftCol: "y", RightTable: "c", RightCol: "y"},
			{LeftTable: "c", LeftCol: "z", RightTable: "d", RightCol: "z"},
		},
	}
	if _, _, err := starShape(q); err == nil {
		t.Error("chain join accepted as star")
	}
}

func TestRunWorkloadOrdersEstimators(t *testing.T) {
	// The Table 4 shape: total runtime under true cardinalities <= total
	// under independence estimates, with both close. We assert correctness
	// of counts and that runtimes are the same order of magnitude.
	db := testDB(t)
	schema := dataset.IMDBSchema()
	cfg := workload.DefaultJOBLightConfig()
	cfg.Count = 20
	cfg.Seed = 5
	set, err := workload.JOBLight(db, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := set.Queries()

	indTime, indStats, err := RunWorkload(db, &Optimizer{DB: db, Est: &estimator.Independence{DB: db}}, queries)
	if err != nil {
		t.Fatal(err)
	}
	oraTime, oraStats, err := RunWorkload(db, &Optimizer{DB: db, Est: &estimator.Oracle{DB: db}}, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if indStats[i].Count != oraStats[i].Count || indStats[i].Count != set[i].Card {
			t.Fatalf("query %d: counts diverge (ind %d, oracle %d, true %d)",
				i, indStats[i].Count, oraStats[i].Count, set[i].Card)
		}
	}
	var indProbe, oraProbe int64
	for i := range queries {
		indProbe += indStats[i].ProbeTuples
		oraProbe += oraStats[i].ProbeTuples
	}
	t.Logf("independence: %v (%d probes) | oracle: %v (%d probes)", indTime, indProbe, oraTime, oraProbe)
	if oraProbe > indProbe {
		t.Errorf("true-cardinality plans probe more (%d) than independence plans (%d)", oraProbe, indProbe)
	}
}
