// Package cli holds the flag validation and environment-building plumbing
// shared by the command-line entry points (cardest, benchrunner, cardestd).
// The commands differ in what they do with a trained estimator — one-shot
// evaluation, paper-table regeneration, long-lived serving — but they build
// the synthetic forest environment and configure training identically, so
// that logic lives here once.
package cli

import (
	"fmt"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// ValidateWorkers rejects negative -workers values with a clear error before
// they reach the training configs. (internal/parallel treats every value
// below 1 as "one worker per CPU", so a typo like -workers -4 would silently
// mean "all cores"; surfacing it is kinder.)
func ValidateWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 means one worker per logical CPU), got %d", n)
	}
	return nil
}

// ForestSpec describes the synthetic forest environment the CLIs share:
// dataset shape, workload style (derived from the QFT), and sizes.
type ForestSpec struct {
	Rows   int   // forest table rows
	TrainN int   // training queries; TestN more are generated for held-out use
	TestN  int   // held-out queries appended after the training split
	Seed   int64 // generation seed for both data and workload
	QFT    string
}

// Validate checks the spec before any expensive work happens.
func (s ForestSpec) Validate() error {
	if s.Rows < 1 {
		return fmt.Errorf("-rows must be >= 1, got %d", s.Rows)
	}
	if s.TrainN < 1 {
		return fmt.Errorf("-train must be >= 1, got %d", s.TrainN)
	}
	if s.TestN < 0 {
		return fmt.Errorf("test query count must be >= 0, got %d", s.TestN)
	}
	return nil
}

// ForestEnv is the built environment: the database plus a labeled train/test
// workload split.
type ForestEnv struct {
	DB    *table.DB
	Table *table.Table
	Train workload.Set
	Test  workload.Set
}

// BuildForestEnv builds the forest dataset and generates + labels the
// workload (mixed AND/OR queries for the "complex" QFT, conjunctive
// otherwise), exactly as the paper's single-table evaluation does.
func BuildForestEnv(spec ForestSpec) (*ForestEnv, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	forest, err := dataset.Forest(dataset.ForestConfig{Rows: spec.Rows, QuantAttrs: 12, BinaryAttrs: 4, Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	db := table.NewDB()
	db.MustAdd(forest)

	count := spec.TrainN + spec.TestN
	var set workload.Set
	if spec.QFT == "complex" {
		set, err = workload.Mixed(forest, workload.MixedConfig{
			ConjConfig:  workload.ConjConfig{Count: count, MaxAttrs: 8, MaxNotEquals: 5, Seed: spec.Seed},
			MaxBranches: 3,
		})
	} else {
		set, err = workload.Conjunctive(forest, workload.ConjConfig{
			Count: count, MaxAttrs: 8, MaxNotEquals: 5, Seed: spec.Seed,
		})
	}
	if err != nil {
		return nil, err
	}
	train, test := set.Split(spec.TrainN)
	return &ForestEnv{DB: db, Table: forest, Train: train, Test: test}, nil
}

// TrainSpec configures a local estimator build shared by cardest and
// cardestd's boot-training path.
type TrainSpec struct {
	QFT     string
	Model   string // "GB", "NN", or "LR"
	Entries int    // per-attribute feature entries (n)
	Workers int    // training goroutines (0 = one per CPU)
}

// NewLocalEstimator builds the (untrained) local estimator for the spec,
// wiring the worker count into the model configs. Callers run Train.
func NewLocalEstimator(db *table.DB, spec TrainSpec) (*estimator.Local, error) {
	if err := ValidateWorkers(spec.Workers); err != nil {
		return nil, err
	}
	gbCfg := gb.DefaultConfig()
	gbCfg.Workers = spec.Workers
	nnCfg := nn.DefaultConfig()
	nnCfg.Workers = spec.Workers
	factory, err := estimator.FactoryByName(spec.Model, gbCfg, nnCfg)
	if err != nil {
		return nil, err
	}
	return estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          spec.QFT,
		Opts:         core.Options{MaxEntriesPerAttr: spec.Entries, AttrSel: true},
		NewRegressor: factory,
	})
}
