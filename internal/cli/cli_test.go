package cli

import (
	"strings"
	"testing"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 8, 1024} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{-1, -4, -100} {
		err := ValidateWorkers(n)
		if err == nil {
			t.Errorf("ValidateWorkers(%d) accepted", n)
			continue
		}
		if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("ValidateWorkers(%d) error %q does not name the flag", n, err)
		}
	}
}

func TestForestSpecValidate(t *testing.T) {
	good := ForestSpec{Rows: 100, TrainN: 10, TestN: 5, Seed: 1, QFT: "conjunctive"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []ForestSpec{
		{Rows: 0, TrainN: 10},
		{Rows: 100, TrainN: 0},
		{Rows: 100, TrainN: 10, TestN: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestBuildForestEnv(t *testing.T) {
	env, err := BuildForestEnv(ForestSpec{Rows: 300, TrainN: 25, TestN: 5, Seed: 2, QFT: "conjunctive"})
	if err != nil {
		t.Fatal(err)
	}
	if env.DB == nil || env.Table == nil {
		t.Fatal("environment missing database or table")
	}
	if env.DB.Table(env.Table.Name) == nil {
		t.Errorf("table %q not registered in the database", env.Table.Name)
	}
	if len(env.Train) != 25 || len(env.Test) != 5 {
		t.Errorf("split = %d/%d, want 25/5", len(env.Train), len(env.Test))
	}

	if _, err := BuildForestEnv(ForestSpec{Rows: 0, TrainN: 10}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBuildForestEnvComplexQFT(t *testing.T) {
	env, err := BuildForestEnv(ForestSpec{Rows: 300, TrainN: 20, TestN: 0, Seed: 2, QFT: "complex"})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Train) != 20 || len(env.Test) != 0 {
		t.Errorf("split = %d/%d, want 20/0", len(env.Train), len(env.Test))
	}
}

func TestNewLocalEstimator(t *testing.T) {
	env, err := BuildForestEnv(ForestSpec{Rows: 300, TrainN: 10, Seed: 2, QFT: "conjunctive"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLocalEstimator(env.DB, TrainSpec{QFT: "conjunctive", Model: "SVM", Entries: 8}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := NewLocalEstimator(env.DB, TrainSpec{QFT: "conjunctive", Model: "GB", Entries: 8, Workers: -2}); err == nil {
		t.Error("negative workers accepted")
	}
	loc, err := NewLocalEstimator(env.DB, TrainSpec{QFT: "conjunctive", Model: "GB", Entries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(env.Train); err != nil {
		t.Fatalf("training the built estimator: %v", err)
	}
}
