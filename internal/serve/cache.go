package serve

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"math"
	"strconv"
	"sync"

	"qfe/internal/core"
	"qfe/internal/sqlparse"
)

// The estimate cache is the serving hot path's semantic memo: a sharded,
// LRU-evicted map from (model generation, canonical query fingerprint) to
// the estimate the model produced. The fingerprint (core.Fingerprint) keys
// the featurization equivalence class, so syntactically different queries
// that the paper's QFTs featurize identically — reordered conjuncts,
// duplicated predicates, "a > 5" vs. "a >= 6" — collide on purpose and a
// hit is bit-identical to recomputation against the same model. The
// registry generation in the key makes invalidation free: every
// Lifecycle.Publish or Rollback registers a fresh entry with a new
// generation, so all keys minted against the displaced model simply stop
// matching and age out of the LRU.
//
// Misses are collapsed with a singleflight: when N requests for the same
// key arrive concurrently, one computes and the rest wait for its result,
// so a thundering herd of identical queries costs one model inference.
//
// What is never cached: failed estimates, degraded (fallback-stage)
// results, and non-finite values — and the server bypasses the cache
// entirely while the drift monitor has an active alarm, because a stale
// estimate during drift is worse than recomputation.

// CacheConfig tunes the estimate cache. The zero value disables it;
// embedders (and cmd/cardestd) opt in by setting Entries.
type CacheConfig struct {
	// Entries bounds the total cached estimates across all shards; past it
	// the least recently used entry of the insert's shard is evicted.
	// <= 0 disables the cache.
	Entries int
	// Shards is the number of independently locked cache shards (rounded up
	// to a power of two). Default 16.
	Shards int
}

// cacheKey scopes a query's fingerprint to the model generation that will
// answer it.
func cacheKey(generation uint64, q *sqlparse.Query) string {
	return strconv.FormatUint(generation, 10) + ":" + core.Fingerprint(q)
}

// cacheable reports whether an estimate may be served again: only clean,
// finite, primary-stage results. Degraded results reflect a fallback the
// next request may not need, and errors must re-run to heal.
func cacheable(res EstResult) bool {
	return res.Err == nil && !res.Degraded &&
		!math.IsNaN(res.Estimate) && !math.IsInf(res.Estimate, 0)
}

// flight is one in-progress computation other requests for the same key
// wait on.
type flight struct {
	done chan struct{} // closed when res is set
	res  EstResult
}

type cacheEntry struct {
	key string
	res EstResult
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element // key → element holding *cacheEntry
	lru     *list.List               // front = most recently used
	flights map[string]*flight
}

// estCache is the sharded LRU + singleflight store. Create with
// newEstCache; a nil *estCache is a valid always-miss, never-store cache.
type estCache struct {
	shards  []*cacheShard
	mask    uint32
	perCap  int      // per-shard entry capacity, >= 1
	metrics *Metrics // hit/miss/eviction/collapse counters
}

func newEstCache(cfg CacheConfig, m *Metrics) *estCache {
	if cfg.Entries <= 0 {
		return nil
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &estCache{
		shards:  make([]*cacheShard, pow),
		mask:    uint32(pow - 1),
		perCap:  (cfg.Entries + pow - 1) / pow,
		metrics: m,
	}
	if c.perCap < 1 {
		c.perCap = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			entries: make(map[string]*list.Element),
			lru:     list.New(),
			flights: make(map[string]*flight),
		}
	}
	return c
}

func (c *estCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck // fnv.Write never fails
	return c.shards[h.Sum32()&c.mask]
}

// get looks key up without joining or starting a flight (the client-batch
// path, which computes its misses in one parallel flush). Counts a hit or
// a miss.
func (c *estCache) get(key string) (EstResult, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e)
		res := e.Value.(*cacheEntry).res
		s.mu.Unlock()
		c.metrics.cacheHits.Add(1)
		return res, true
	}
	s.mu.Unlock()
	c.metrics.cacheMisses.Add(1)
	return EstResult{}, false
}

// put stores a computed result (batch path); uncacheable results are
// dropped.
func (c *estCache) put(key string, res EstResult) {
	if !cacheable(res) {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	c.insertLocked(s, key, res)
	s.mu.Unlock()
}

// do returns the cached result for key or computes it, collapsing
// concurrent identical misses into one compute call. The caller's ctx only
// bounds its own wait: a follower whose context expires unblocks
// immediately, and a follower that inherits a leader's context-shaped
// failure recomputes for itself rather than propagating an error that says
// nothing about its own request.
func (c *estCache) do(ctx context.Context, key string, compute func() EstResult) EstResult {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e)
		res := e.Value.(*cacheEntry).res
		s.mu.Unlock()
		c.metrics.cacheHits.Add(1)
		return res
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		c.metrics.cacheCollapsed.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			return EstResult{Err: ctx.Err()}
		}
		res := f.res
		if res.Err != nil && isContextErr(res.Err) && ctx.Err() == nil {
			// The leader was cut short by its own deadline or client; this
			// request is still live, so its estimate is still owed.
			return compute()
		}
		return res
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()
	c.metrics.cacheMisses.Add(1)

	finished := false
	defer func() {
		// On panic (propagated to the HTTP layer's recovery) the flight
		// still resolves, so followers never hang on a leader that died.
		if !finished {
			f.res = EstResult{Err: errors.New("serve: estimate computation panicked")}
			s.mu.Lock()
			delete(s.flights, key)
			s.mu.Unlock()
			close(f.done)
		}
	}()
	res := compute()
	finished = true

	s.mu.Lock()
	delete(s.flights, key)
	if cacheable(res) {
		c.insertLocked(s, key, res)
	}
	s.mu.Unlock()
	f.res = res
	close(f.done)
	return res
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// insertLocked adds or refreshes key under s.mu, evicting the shard's LRU
// tail past capacity.
func (c *estCache) insertLocked(s *cacheShard, key string, res EstResult) {
	if e, ok := s.entries[key]; ok {
		e.Value.(*cacheEntry).res = res
		s.lru.MoveToFront(e)
		return
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, res: res})
	for s.lru.Len() > c.perCap {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.entries, tail.Value.(*cacheEntry).key)
		c.metrics.cacheEvictions.Add(1)
	}
}

// len reports the cached entry count across shards (tests and status).
func (c *estCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
