package serve

// Admission control: a bounded in-flight semaphore that sheds load instead
// of queueing unboundedly. The estimate path acquires a slot per HTTP
// request; when every slot is taken, the server answers 429 with a
// Retry-After hint immediately — the queue a learned estimator builds under
// overload is latency the DBMS's optimizer never gets back, so shedding
// beats waiting.

// limiter is a counting semaphore with a non-blocking acquire.
type limiter struct {
	slots chan struct{}
}

func newLimiter(n int) *limiter {
	if n < 1 {
		n = 1
	}
	return &limiter{slots: make(chan struct{}, n)}
}

// tryAcquire takes a slot if one is free, never blocking.
func (l *limiter) tryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l *limiter) release() { <-l.slots }

// inFlight reports the number of held slots (approximate under concurrency).
func (l *limiter) inFlight() int { return len(l.slots) }

// capacity reports the configured bound.
func (l *limiter) capacity() int { return cap(l.slots) }
