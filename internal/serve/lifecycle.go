package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/store"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// Lifecycle is the guarded path between a trained model and the registry:
// every candidate must clear the canary gate before it is registered, a
// passing candidate is durably persisted to the crash-safe store before it
// takes traffic, and the reverse path — quarantine a degraded generation,
// roll the registry back to the previous good one — is the same machinery
// run in the other direction. The supervisor (supervisor.go) drives the
// reverse path automatically; POST /v1/models/rollback drives it manually.
//
// Locking: one mutex serializes lifecycle transitions (publish, probe,
// rollback). Canary runs execute under it — transitions are rare and must
// not interleave — while estimate traffic keeps resolving models lock-free
// through the registry snapshot.

// ErrCanaryRejected wraps every publish refusal caused by a failed canary.
var ErrCanaryRejected = errors.New("serve: canary rejected the model")

// ErrNoRollbackTarget is returned when no prior valid generation exists.
var ErrNoRollbackTarget = errors.New("serve: no valid generation to roll back to")

// LifecycleConfig assembles a Lifecycle.
type LifecycleConfig struct {
	// Registry is where admitted models are published. Required.
	Registry *Registry
	// Store persists admitted snapshots and feeds recovery/rollback. May be
	// nil: the canary gate still applies, but nothing is durable and
	// rollback has nothing to roll back to.
	Store *store.Store
	// DB schema-validates snapshots restored from the store (and binds
	// hybrid fallbacks). Pass the serving database.
	DB *table.DB
	// Canary parameterizes the gate.
	Canary CanaryConfig
}

// Publication describes one admitted model: its registry info and the
// canary run that admitted it.
type Publication struct {
	Info   ModelInfo    `json:"info"`
	Canary CanaryResult `json:"canary"`
}

// PublishSpec is one candidate model offered to Publish.
type PublishSpec struct {
	// Name is the registry name to publish under. Required.
	Name string
	// Est is the bare (unwrapped) estimator; the canary probes it directly
	// so a resilience chain cannot mask a bad model with good fallbacks.
	Est estimator.Estimator
	// Kind is the snapshot kind ("local", "global", "hybrid").
	Kind string
	// Source labels the origin in ModelInfo ("boot", a file path, ...).
	Source string
	// Snapshot, when non-nil, is the serialized model (SaveJSON output)
	// persisted to the store on admission.
	Snapshot []byte
	// MakeDefault promotes the model to the default on admission; the
	// canary then also compares it against the incumbent default.
	MakeDefault bool
}

// liveModel tracks the store-backed default the supervisor watches.
type liveModel struct {
	name     string
	gen      uint64 // store generation, 0 when not persisted
	bare     estimator.Estimator
	baseline CanaryResult // the admitting run; probes compare against it
}

// Lifecycle guards the registry. Create with NewLifecycle; pass it to
// serve.Config so the server binds its metrics and exposes rollback.
type Lifecycle struct {
	reg     *Registry
	st      *store.Store
	db      *table.DB
	canary  CanaryConfig
	metrics *Metrics // nil until bound; observers are nil-safe

	mu   sync.Mutex
	live liveModel
}

// NewLifecycle validates cfg and returns a lifecycle.
func NewLifecycle(cfg LifecycleConfig) (*Lifecycle, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: LifecycleConfig.Registry is required")
	}
	return &Lifecycle{
		reg:    cfg.Registry,
		st:     cfg.Store,
		db:     cfg.DB,
		canary: cfg.Canary.withDefaults(),
	}, nil
}

// bindMetrics attaches the server's metrics (serve.New calls this).
func (lc *Lifecycle) bindMetrics(m *Metrics) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.metrics = m
	m.setCanaryThresholds(lc.canary.MaxMedian, lc.canary.MaxP95)
	m.setStoreGeneration(lc.live.gen)
}

// Store returns the backing store (nil when none).
func (lc *Lifecycle) Store() *store.Store { return lc.st }

// SetCanaryWorkload swaps the canary gate's workload — the traffic-derived
// refresh path: as the feedback journal rotates segments, the daemon
// derives a canary set from recent real traffic and installs it here, so
// publish gates and supervisor probes score candidates on what production
// actually asks rather than on a synthetic set frozen at boot. An empty
// workload is refused (it would disable the gate).
//
// The live model, when present, is immediately re-scored on the new
// workload and its baseline replaced: Probe and incumbent-relative publish
// checks compare medians across runs, which is only meaningful when both
// ran the same queries. A live model that fails outright on the new
// workload keeps the old baseline and workload, and the error says so —
// installing a workload the incumbent cannot pass would make every
// subsequent probe a rollback.
func (lc *Lifecycle) SetCanaryWorkload(ctx context.Context, ws workload.Set) error {
	if len(ws) == 0 {
		return fmt.Errorf("serve: refusing an empty canary workload")
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	next := lc.canary
	next.Workload = ws
	if lc.live.bare != nil {
		res := RunCanary(ctx, lc.live.bare, next, nil)
		if !res.Pass {
			if ctx.Err() != nil {
				return fmt.Errorf("serve: canary workload swap interrupted: %w", ctx.Err())
			}
			return fmt.Errorf("serve: live model fails on the proposed canary workload (%s); keeping the current one", res.Reason)
		}
		lc.live.baseline = res
		canary := res
		lc.reg.UpdateInfo(lc.live.name, func(info *ModelInfo) { info.Canary = &canary }) //nolint:errcheck // entry may have been replaced concurrently
	}
	lc.canary = next
	return nil
}

// CanaryWorkloadSize reports the current gate workload's size (status pages).
func (lc *Lifecycle) CanaryWorkloadSize() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.canary.Workload)
}

// Publish runs spec.Est through the canary gate and, on admission,
// persists the snapshot (when given and a store is configured) and
// registers the model. On rejection nothing is registered or persisted and
// the returned error wraps ErrCanaryRejected; the returned Publication
// still carries the failing canary result.
func (lc *Lifecycle) Publish(ctx context.Context, spec PublishSpec) (Publication, error) {
	if spec.Name == "" || spec.Est == nil {
		return Publication{}, fmt.Errorf("serve: publish needs a name and an estimator")
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()

	var incumbent *CanaryResult
	if spec.MakeDefault && lc.live.bare != nil {
		b := lc.live.baseline
		incumbent = &b
	}
	res := RunCanary(ctx, spec.Est, lc.canary, incumbent)
	if !res.Pass && ctx.Err() != nil {
		// The run was cut short by cancellation, not failed by the model:
		// report the interruption, not a canary verdict.
		return Publication{Canary: res}, fmt.Errorf("serve: canary interrupted: %w", ctx.Err())
	}
	lc.metrics.observeCanary(res.Pass)
	if !res.Pass {
		return Publication{Canary: res}, fmt.Errorf("%w: %s", ErrCanaryRejected, res.Reason)
	}

	var gen uint64
	if lc.st != nil && spec.Snapshot != nil {
		g, err := lc.st.Put(spec.Name, spec.Kind, "canary: "+res.Reason, spec.Snapshot)
		if err != nil {
			// Not durable ⇒ not published: a model that cannot be rolled
			// back to must not displace one that can.
			return Publication{Canary: res}, fmt.Errorf("serve: persist admitted model: %w", err)
		}
		gen = g.Number
	}
	pub, err := lc.registerLocked(spec.Name, spec.Est, spec.Kind, spec.Source, gen, res, spec.MakeDefault)
	if err != nil {
		return Publication{Canary: res}, err
	}
	return pub, nil
}

// Recover restores the newest store generation that both loads and passes
// the canary, registering it under name. Generations that fail either
// check are quarantined and the scan continues downward. ok is false when
// the store is missing or holds no admissible generation — the caller
// should then train or load a model some other way.
func (lc *Lifecycle) Recover(ctx context.Context, name string, makeDefault bool) (Publication, bool, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	pub, err := lc.promoteFromStoreLocked(ctx, name, makeDefault, nil)
	if err != nil {
		if errors.Is(err, ErrNoRollbackTarget) {
			return Publication{}, false, nil
		}
		return Publication{}, false, err
	}
	return pub, true, nil
}

// Rollback quarantines the live generation and promotes the newest prior
// generation that loads and passes the canary. reason is recorded in the
// rollback metrics trail. Serving is never interrupted: until the
// replacement is registered the incumbent keeps answering, and if no
// replacement exists the incumbent stays (with the error telling the
// caller so).
func (lc *Lifecycle) Rollback(ctx context.Context, reason string) (Publication, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.rollbackLocked(ctx, reason)
}

func (lc *Lifecycle) rollbackLocked(ctx context.Context, reason string) (Publication, error) {
	if lc.st == nil {
		return Publication{}, fmt.Errorf("serve: rollback needs a snapshot store")
	}
	if lc.live.name == "" {
		return Publication{}, fmt.Errorf("serve: no lifecycle-managed model to roll back")
	}
	if err := ctx.Err(); err != nil {
		// Canceled before any destructive step (e.g. the client behind
		// POST /v1/models/rollback disconnected): leave everything in place.
		return Publication{}, fmt.Errorf("serve: rollback aborted: %w", err)
	}
	if lc.live.gen != 0 {
		if err := lc.quarantineLocked(lc.live.gen); err != nil {
			return Publication{}, err
		}
	}
	pub, err := lc.promoteFromStoreLocked(ctx, lc.live.name, true, nil)
	if err != nil {
		return Publication{}, err
	}
	lc.metrics.observeRollback(time.Now())
	_ = reason // recorded by callers' logs; metrics count the event itself
	return pub, nil
}

// promoteFromStoreLocked walks the store newest-first: load, schema-check,
// canary. Failures are quarantined and the walk continues; success
// registers and returns. incumbent (usually nil here: the model being
// replaced is gone or distrusted) feeds the canary comparison.
func (lc *Lifecycle) promoteFromStoreLocked(ctx context.Context, name string, makeDefault bool, incumbent *CanaryResult) (Publication, error) {
	if lc.st == nil {
		return Publication{}, ErrNoRollbackTarget
	}
	for {
		g, ok := lc.st.Latest()
		if !ok {
			return Publication{}, ErrNoRollbackTarget
		}
		payload, man, err := lc.st.Read(g.Number)
		if err != nil {
			// Bit rot between Open and now; quarantine and keep walking.
			if qerr := lc.quarantineLocked(g.Number); qerr != nil {
				return Publication{}, qerr
			}
			continue
		}
		est, kind, err := estimator.LoadEstimator(bytes.NewReader(payload), lc.db)
		if err != nil {
			if qerr := lc.quarantineLocked(g.Number); qerr != nil {
				return Publication{}, qerr
			}
			continue
		}
		res := RunCanary(ctx, est, lc.canary, incumbent)
		if !res.Pass && ctx.Err() != nil {
			// The canary was cut short by cancellation, not failed by the
			// model — quarantining here would burn every valid generation on
			// a transient client disconnect or shutdown. Abort the walk and
			// leave the store untouched.
			return Publication{}, fmt.Errorf("serve: canary for generation %d interrupted: %w", g.Number, ctx.Err())
		}
		lc.metrics.observeCanary(res.Pass)
		if !res.Pass {
			if qerr := lc.quarantineLocked(g.Number); qerr != nil {
				return Publication{}, qerr
			}
			continue
		}
		source := fmt.Sprintf("store:gen-%d", g.Number)
		if man.Name != "" && man.Name != name {
			source += " (published as " + man.Name + ")"
		}
		return lc.registerLocked(name, est, kind, source, g.Number, res, makeDefault)
	}
}

// quarantineLocked retires gen from the store's valid set. An unknown
// generation counts as already quarantined; any other failure (the rename
// hit an I/O error, say) is returned so callers abort instead of
// re-selecting the same generation forever — Latest would keep returning it.
func (lc *Lifecycle) quarantineLocked(gen uint64) error {
	err := lc.st.Quarantine(gen)
	switch {
	case err == nil:
		lc.metrics.observeQuarantine()
		return nil
	case errors.Is(err, store.ErrUnknownGeneration):
		return nil
	default:
		return fmt.Errorf("serve: quarantine generation %d: %w", gen, err)
	}
}

// registerLocked publishes an admitted model into the registry and updates
// the live tracking when it becomes the default.
func (lc *Lifecycle) registerLocked(name string, est estimator.Estimator, kind, source string, gen uint64, res CanaryResult, makeDefault bool) (Publication, error) {
	canary := res
	info, err := lc.reg.Register(name, est, ModelInfo{
		Kind:            kind,
		Source:          source,
		StoreGeneration: gen,
		Canary:          &canary,
	})
	if err != nil {
		return Publication{}, err
	}
	if makeDefault {
		if err := lc.reg.SetDefault(name); err != nil {
			return Publication{}, err
		}
		lc.live = liveModel{name: name, gen: gen, bare: est, baseline: res}
		lc.metrics.setStoreGeneration(gen)
	}
	return Publication{Info: info, Canary: res}, nil
}

// ProbeOutcome reports one supervisor probe.
type ProbeOutcome struct {
	// Probed is false when no lifecycle-managed model is live.
	Probed bool `json:"probed"`
	// Result is the live model's canary run.
	Result CanaryResult `json:"result"`
	// RolledBack reports whether the probe quarantined the live model and
	// promoted a prior generation.
	RolledBack bool `json:"rolledBack"`
	// RolledBackTo is the promoted publication when RolledBack.
	RolledBackTo Publication `json:"rolledBackTo,omitempty"`
}

// Probe re-runs the canary against the live model's bare estimator —
// bypassing any resilience wrapping, whose fallbacks would mask a decayed
// model — and, on failure, quarantines its generation and rolls back to
// the newest prior generation that still passes. The registry's published
// canary status is refreshed either way.
func (lc *Lifecycle) Probe(ctx context.Context) (ProbeOutcome, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.live.bare == nil {
		return ProbeOutcome{}, nil
	}
	baseline := lc.live.baseline
	res := RunCanary(ctx, lc.live.bare, lc.canary, &baseline)
	if !res.Pass && ctx.Err() != nil {
		// An interrupted probe (supervisor shutting down, caller gone) says
		// nothing about the model: report the cancellation without recording
		// a verdict or rolling anything back.
		return ProbeOutcome{Probed: true, Result: res}, fmt.Errorf("serve: probe interrupted: %w", ctx.Err())
	}
	lc.metrics.observeCanary(res.Pass)
	out := ProbeOutcome{Probed: true, Result: res}
	canary := res
	lc.reg.UpdateInfo(lc.live.name, func(info *ModelInfo) { info.Canary = &canary }) //nolint:errcheck // entry may have been replaced concurrently
	if res.Pass {
		return out, nil
	}
	pub, err := lc.rollbackLocked(ctx, "auto: "+res.Reason)
	if err != nil {
		// Nothing to fall back to: the incumbent keeps serving (its
		// resilience chain still guards individual estimates) and the
		// failed probe stays visible in /v1/models.
		return out, fmt.Errorf("serve: live model failed its canary (%s) and rollback failed: %w", res.Reason, err)
	}
	out.RolledBack = true
	out.RolledBackTo = pub
	return out, nil
}
