// Package serve is the production front door of the estimation system: a
// long-lived HTTP server that routes estimate requests to a hot-swappable
// model registry, coalesces concurrent single-query requests into batches
// for the parallel estimation path, and protects itself with admission
// control, per-request deadlines, and graceful drain.
//
// Endpoints:
//
//	POST /v1/estimate    — estimate one query ({"sql": ...}) or a batch
//	                       ({"queries": [{"sql": ...}, ...]}); optional
//	                       "model", "timeoutMs", and per-query "actual"
//	                       (true cardinality feedback, recorded as q-error)
//	GET  /v1/models      — list registered models (with store generation and
//	                       canary status) and the default
//	POST /v1/models/load — load a persisted snapshot from disk (confined to
//	                       the configured model root) and swap it in without
//	                       dropping in-flight requests; canary-gated when a
//	                       lifecycle is configured (409 on rejection)
//	POST /v1/models/rollback — quarantine the live generation and promote
//	                       the previous good one from the crash-safe store
//	GET  /healthz        — 200 while serving, 503 while draining
//	GET  /metrics        — expvar-style JSON counters and histograms
//
// The server never queues unboundedly: past MaxInFlight concurrent estimate
// requests it sheds with 429 + Retry-After. During drain (SIGTERM) new
// requests get 503 while in-flight ones run to completion.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/metrics"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Config assembles a Server. Registry is required; everything else has
// serviceable defaults.
type Config struct {
	// Registry resolves model names to estimators.
	Registry *Registry
	// DB binds string literals in incoming SQL to dictionary codes and
	// schema-validates loaded snapshots. May be nil when queries carry no
	// string predicates and snapshots are trusted.
	DB *table.DB
	// Batcher tunes request coalescing.
	Batcher BatcherConfig
	// MaxInFlight bounds concurrent estimate requests; excess is shed with
	// 429. Default 64.
	MaxInFlight int
	// RetryAfter is the hint sent with 429 responses. Default 1s.
	RetryAfter time.Duration
	// DefaultTimeout bounds each request's estimation when the request
	// itself asks for nothing tighter. Zero means no implicit deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default 30s.
	MaxTimeout time.Duration
	// MaxQueriesPerRequest bounds client batch size (413 past it).
	// Default 256.
	MaxQueriesPerRequest int
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// ModelRoot, when set, confines POST /v1/models/load to snapshots under
	// this directory: relative paths resolve against it, and any path that
	// escapes it (via ".." or an absolute path elsewhere) is refused with
	// 400. Empty means unrestricted (embedders doing their own vetting).
	ModelRoot string
	// Lifecycle, when set, gates /v1/models/load through the canary (409 on
	// rejection), persists admitted models to the crash-safe store, and
	// enables POST /v1/models/rollback. Nil preserves the direct,
	// ungated load path.
	Lifecycle *Lifecycle
	// Cache enables the generation-scoped semantic estimate cache on the
	// /v1/estimate hot path (see cache.go). The zero value disables it.
	Cache CacheConfig
	// CacheBypass, when non-nil, is consulted per request: while it returns
	// true the cache is neither read nor written (hits, misses, and
	// singleflight all skipped). The daemon wires the drift monitor's
	// active-alarm state here — stale estimates during drift are worse
	// than recomputation. Must be safe for concurrent use.
	CacheBypass func() bool
	// Feedback, when non-nil, observes every successfully estimated query.
	// The event says explicitly whether the client reported a true
	// cardinality (HasActual) — an actual of zero rows is real feedback,
	// distinct from no feedback at all. Called synchronously on the request
	// path — keep it cheap (the drift monitor taps the stream here, and the
	// daemon's journal append behind it is a non-blocking enqueue).
	Feedback func(ev FeedbackEvent)
	// ExtraMetrics, when non-nil, is merged into the /metrics snapshot;
	// the server's own keys win on collision. Drift and retraining counters
	// ride in this way.
	ExtraMetrics func() map[string]any
	// StatusPages maps extra GET paths (e.g. "/v1/drift") to functions whose
	// result is rendered as JSON. Paths here must not collide with the
	// built-in endpoints.
	StatusPages map[string]func() any
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxQueriesPerRequest < 1 {
		c.MaxQueriesPerRequest = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Batcher.Queue < c.MaxInFlight {
		// An admitted request must always find queue room; see batcher.
		c.Batcher.Queue = c.MaxInFlight
	}
	return c
}

// Server wires the registry, batcher, admission control, and metrics behind
// an http.Handler. Create with New, expose via Handler, stop with Drain
// then Close.
type Server struct {
	cfg      Config
	reg      *Registry
	batcher  *batcher
	limiter  *limiter
	cache    *estCache // nil when Config.Cache left zero
	metrics  *Metrics
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a Server from cfg. cfg.Registry must be non-nil.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: Config.Registry is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		limiter: newLimiter(cfg.MaxInFlight),
		metrics: newMetrics(),
	}
	s.batcher = newBatcher(cfg.Batcher, s.metrics.observeBatch)
	s.cache = newEstCache(cfg.Cache, s.metrics)
	if cfg.Lifecycle != nil {
		cfg.Lifecycle.bindMetrics(s.metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/models/load", s.handleLoad)
	s.mux.HandleFunc("/v1/models/rollback", s.handleRollback)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", s.metrics)
	s.metrics.extra = cfg.ExtraMetrics
	for path, fn := range cfg.StatusPages {
		fn := fn
		s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				writeError(w, http.StatusMethodNotAllowed, "use GET")
				return
			}
			writeJSON(w, http.StatusOK, fn())
		})
	}
	return s, nil
}

// Handler returns the server's HTTP handler (status-code accounting wrapped
// around the mux).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		s.mux.ServeHTTP(sw, r)
		s.metrics.observeStatus(sw.status())
	})
}

// Metrics exposes the server's counters (tests and embedding daemons).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain puts the server into drain mode: new estimate requests are refused
// with 503 while requests already admitted keep running. Call before
// http.Server.Shutdown so the listener close has nothing left to wait for
// beyond the in-flight tail.
func (s *Server) Drain() { s.draining.Store(true) }

// Close stops the batcher after flushing everything queued. Call after the
// HTTP listener is down.
func (s *Server) Close() { s.batcher.Close() }

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// FeedbackEvent is one successfully served estimate as observed by
// Config.Feedback: everything the drift monitor and the feedback journal
// need, with the has-actual bit made explicit so a genuine zero-row actual
// is never mistaken for absent feedback.
type FeedbackEvent struct {
	// Query is the parsed, bound query.
	Query *sqlparse.Query
	// SQL is the query text as the client sent it.
	SQL string
	// Model and Generation identify the registry entry that answered.
	Model      string
	Generation uint64
	// Estimate is the cardinality the client received.
	Estimate float64
	// Actual is the client-reported true cardinality; meaningful only when
	// HasActual is set. HasActual with Actual == 0 is a genuine empty
	// result.
	Actual    float64
	HasActual bool
	// Latency is the server-side estimation time (per-query share for
	// client batches).
	Latency time.Duration
}

// ---- request/response shapes ----

type estimateItem struct {
	SQL string `json:"sql"`
	// Actual, when present and >= 0, is the client-reported true
	// cardinality (post-execution feedback); the server records the
	// estimate's q-error and forwards it to Config.Feedback. Absent (null)
	// or negative means no feedback; an explicit 0 is a genuine empty
	// result.
	Actual *float64 `json:"actual,omitempty"`
}

type estimateRequest struct {
	Model     string         `json:"model,omitempty"`
	TimeoutMS int64          `json:"timeoutMs,omitempty"`
	SQL       string         `json:"sql,omitempty"`
	Actual    *float64       `json:"actual,omitempty"`
	Queries   []estimateItem `json:"queries,omitempty"`
}

type estimateResult struct {
	Estimate float64 `json:"estimate,omitempty"`
	Stage    string  `json:"stage,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Micros   int64   `json:"micros"`
	Error    string  `json:"error,omitempty"`
}

type estimateResponse struct {
	Model string `json:"model"`
	estimateResult
	Results []estimateResult `json:"results,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// ---- handlers ----

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.metrics.drained.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.limiter.tryAcquire() {
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "at capacity (%d requests in flight); retry later", s.limiter.capacity())
		return
	}
	defer s.limiter.release()
	s.metrics.requests.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	var req estimateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	single := req.SQL != ""
	if single == (len(req.Queries) > 0) {
		writeError(w, http.StatusBadRequest, `provide exactly one of "sql" or "queries"`)
		return
	}
	// Feedback values enter detectors and histograms downstream; a NaN or
	// ±Inf actual is rejected here at the edge so nothing past this point
	// needs to re-check. (Negative actuals already mean "no feedback".)
	if !finiteActual(req.Actual) {
		writeError(w, http.StatusBadRequest, `"actual" must be a finite number`)
		return
	}
	if len(req.Queries) > s.cfg.MaxQueriesPerRequest {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d queries exceeds the %d-query limit", len(req.Queries), s.cfg.MaxQueriesPerRequest)
		return
	}

	est, info, err := s.reg.Resolve(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMS)
	defer cancel()

	if single {
		q, err := s.parseAndBind(req.SQL)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		res := s.estimateTimed(ctx, est, info, q, req.SQL, req.Actual)
		if res.Error != "" {
			// The query parsed but could not be estimated (e.g. no model for
			// its sub-schema): the request, not the server, is at fault.
			writeJSON(w, http.StatusUnprocessableEntity, estimateResponse{Model: info.Name, estimateResult: res})
			return
		}
		writeJSON(w, http.StatusOK, estimateResponse{Model: info.Name, estimateResult: res})
		return
	}

	// Client batch: parse everything first (parse errors are per-item), then
	// push the parseable queries through the parallel path in one go.
	results := make([]estimateResult, len(req.Queries))
	qs := make([]*sqlparse.Query, 0, len(req.Queries))
	idx := make([]int, 0, len(req.Queries))
	for i, item := range req.Queries {
		if !finiteActual(item.Actual) {
			results[i] = estimateResult{Error: `"actual" must be a finite number`}
			s.metrics.estErrors.Add(1)
			continue
		}
		q, err := s.parseAndBind(item.SQL)
		if err != nil {
			results[i] = estimateResult{Error: err.Error()}
			s.metrics.estErrors.Add(1)
			continue
		}
		qs = append(qs, q)
		idx = append(idx, i)
	}
	start := time.Now()
	batchRes := s.estimateBatch(ctx, est, info.Generation, qs)
	elapsed := time.Since(start)
	perQuery := elapsed / time.Duration(max(1, len(batchRes)))
	for j, br := range batchRes {
		i := idx[j]
		results[i] = toResult(br, perQuery)
		s.metrics.observeQuery(perQuery, br.Degraded, br.Err)
		if br.Err == nil {
			actual, hasActual := actualValue(req.Queries[i].Actual)
			if hasActual && actual > 0 {
				s.metrics.ObserveQError(metrics.QError(actual, br.Estimate))
			}
			if s.cfg.Feedback != nil {
				s.cfg.Feedback(FeedbackEvent{
					Query:      qs[j],
					SQL:        req.Queries[i].SQL,
					Model:      info.Name,
					Generation: info.Generation,
					Estimate:   br.Estimate,
					Actual:     actual,
					HasActual:  hasActual,
					Latency:    perQuery,
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, estimateResponse{Model: info.Name, Results: results})
}

// activeCache returns the estimate cache, or nil when it is disabled or
// bypassed for this request (drift alarm active).
func (s *Server) activeCache() *estCache {
	if s.cache == nil {
		return nil
	}
	if s.cfg.CacheBypass != nil && s.cfg.CacheBypass() {
		return nil
	}
	return s.cache
}

// estimateTimed runs one query through the estimate cache and the
// coalescing batcher, and records its metrics. Feedback (drift monitoring,
// q-error accounting) observes cached answers too: the client still
// received that estimate, so the detectors must still see it.
func (s *Server) estimateTimed(ctx context.Context, est estimator.Estimator, info ModelInfo, q *sqlparse.Query, sql string, reported *float64) estimateResult {
	start := time.Now()
	var br EstResult
	if c := s.activeCache(); c != nil {
		br = c.do(ctx, cacheKey(info.Generation, q), func() EstResult { return s.batcher.Do(ctx, est, q) })
	} else {
		br = s.batcher.Do(ctx, est, q)
	}
	elapsed := time.Since(start)
	s.metrics.observeQuery(elapsed, br.Degraded, br.Err)
	if br.Err == nil {
		actual, hasActual := actualValue(reported)
		if hasActual && actual > 0 {
			s.metrics.ObserveQError(metrics.QError(actual, br.Estimate))
		}
		if s.cfg.Feedback != nil {
			s.cfg.Feedback(FeedbackEvent{
				Query:      q,
				SQL:        sql,
				Model:      info.Name,
				Generation: info.Generation,
				Estimate:   br.Estimate,
				Actual:     actual,
				HasActual:  hasActual,
				Latency:    elapsed,
			})
		}
	}
	return toResult(br, elapsed)
}

// estimateBatch answers a client-supplied batch, serving what it can from
// the estimate cache and pushing only the misses through the parallel
// path in one flush. The batch path skips the singleflight — the client
// already batched, so there is nothing concurrent to collapse — but reads
// and feeds the same cache as the single path.
func (s *Server) estimateBatch(ctx context.Context, est estimator.Estimator, gen uint64, qs []*sqlparse.Query) []EstResult {
	c := s.activeCache()
	if c == nil {
		return s.batcher.DoBatch(ctx, est, qs)
	}
	out := make([]EstResult, len(qs))
	keys := make([]string, len(qs))
	missQ := make([]*sqlparse.Query, 0, len(qs))
	missIdx := make([]int, 0, len(qs))
	for i, q := range qs {
		keys[i] = cacheKey(gen, q)
		if res, ok := c.get(keys[i]); ok {
			out[i] = res
			continue
		}
		missQ = append(missQ, q)
		missIdx = append(missIdx, i)
	}
	if len(missQ) > 0 {
		for k, res := range s.batcher.DoBatch(ctx, est, missQ) {
			out[missIdx[k]] = res
			c.put(keys[missIdx[k]], res)
		}
	}
	return out
}

// retryAfterSeconds renders the Retry-After hint: the configured duration
// rounded up to whole seconds and clamped to >= 1. The naive truncation it
// replaces rendered sub-second durations as "Retry-After: 0", which invites
// every shed client to retry immediately — a thundering herd aimed at a
// server that just declared itself at capacity.
func retryAfterSeconds(d time.Duration) int {
	secs := (d + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return int(secs)
}

// finiteActual vets a client-reported true cardinality at the ingestion
// edge. Absent (nil) and negative values are fine — they mean "no
// feedback" — but NaN and ±Inf are malformed.
func finiteActual(v *float64) bool {
	return v == nil || (!math.IsNaN(*v) && !math.IsInf(*v, 0))
}

// actualValue resolves a client-reported actual into (value, hasActual).
// nil means the field was absent; negative values are the pre-pointer wire
// convention for "no feedback" and stay that. An explicit zero IS feedback:
// the query truly returned no rows. This is the single point that decides
// the has-actual bit — everything downstream (q-error histograms, the drift
// monitor, the journal) trusts it rather than re-interpreting zero.
func actualValue(v *float64) (float64, bool) {
	if v == nil || *v < 0 {
		return 0, false
	}
	return *v, true
}

func toResult(br EstResult, elapsed time.Duration) estimateResult {
	res := estimateResult{Micros: elapsed.Microseconds()}
	if br.Err != nil {
		res.Error = br.Err.Error()
		return res
	}
	res.Estimate = br.Estimate
	res.Stage = br.Stage
	res.Degraded = br.Degraded
	return res
}

// requestContext derives the estimation deadline: the client's timeoutMs
// (capped at MaxTimeout) or the server default.
func (s *Server) requestContext(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// parseAndBind turns SQL text into a bound query. All failures here are the
// client's (4xx): syntax errors, unknown tables/columns, type mismatches.
func (s *Server) parseAndBind(sql string) (*sqlparse.Query, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if s.cfg.DB != nil {
		if err := exec.Bind(q, s.cfg.DB); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	models, def := s.reg.List()
	writeJSON(w, http.StatusOK, map[string]any{"default": def, "models": models})
}

type loadRequest struct {
	Name    string `json:"name"`
	Path    string `json:"path"`
	Default bool   `json:"default,omitempty"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req loadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		writeError(w, http.StatusBadRequest, `"name" and "path" are required`)
		return
	}
	path, err := s.resolveModelPath(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if s.cfg.Lifecycle == nil {
		info, err := s.reg.LoadFile(req.Name, path, s.cfg.DB, req.Default)
		if err != nil {
			writeError(w, http.StatusBadRequest, "load %q from %s: %v", req.Name, req.Path, err)
			return
		}
		s.metrics.swaps.Add(1)
		writeJSON(w, http.StatusOK, info)
		return
	}

	// Lifecycle-gated load: the snapshot bytes are read once, probed by the
	// canary, and — only on admission — persisted to the store and published.
	snap, err := os.ReadFile(path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "load %q from %s: %v", req.Name, req.Path, err)
		return
	}
	est, kind, err := estimator.LoadEstimator(bytes.NewReader(snap), s.cfg.DB)
	if err != nil {
		writeError(w, http.StatusBadRequest, "load %q from %s: %v", req.Name, req.Path, err)
		return
	}
	pub, err := s.cfg.Lifecycle.Publish(r.Context(), PublishSpec{
		Name:        req.Name,
		Est:         est,
		Kind:        kind,
		Source:      path,
		Snapshot:    snap,
		MakeDefault: req.Default,
	})
	if err != nil {
		if errors.Is(err, ErrCanaryRejected) {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  err.Error(),
				"canary": pub.Canary,
			})
			return
		}
		writeError(w, http.StatusInternalServerError, "publish %q: %v", req.Name, err)
		return
	}
	s.metrics.swaps.Add(1)
	writeJSON(w, http.StatusOK, pub)
}

// resolveModelPath confines a client-supplied snapshot path to the
// configured model root. Relative paths resolve against the root; the
// cleaned result must stay inside it both lexically and after resolving
// symlinks, so a link planted inside the root cannot point a load outside
// it.
func (s *Server) resolveModelPath(p string) (string, error) {
	if s.cfg.ModelRoot == "" {
		return p, nil
	}
	rootAbs, err := filepath.Abs(s.cfg.ModelRoot)
	if err != nil {
		return "", fmt.Errorf("model root %q: %v", s.cfg.ModelRoot, err)
	}
	// The root itself may sit behind symlinks (e.g. /tmp on some systems);
	// resolve it so the post-EvalSymlinks containment check compares like
	// with like. A root that does not exist yet keeps its lexical form.
	rootRes := rootAbs
	if r, err := filepath.EvalSymlinks(rootAbs); err == nil {
		rootRes = r
	}
	within := func(root, path string) bool {
		rel, err := filepath.Rel(root, path)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	escape := func() (string, error) {
		return "", fmt.Errorf("path %q escapes the model root (models may only be loaded from %s)", p, s.cfg.ModelRoot)
	}
	full := p
	if !filepath.IsAbs(full) {
		full = filepath.Join(rootAbs, full)
	}
	full = filepath.Clean(full)
	// Lexical check first: ".." and foreign absolute paths are refused
	// before any filesystem access.
	if !within(rootAbs, full) && !within(rootRes, full) {
		return escape()
	}
	// Then re-check with symlinks resolved. A path that does not exist
	// cannot leak anything — the read that follows fails — so it keeps the
	// lexically-vetted form.
	resolved, err := filepath.EvalSymlinks(full)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return full, nil
		}
		return "", fmt.Errorf("path %q: %v", p, err)
	}
	if !within(rootRes, resolved) {
		return escape()
	}
	return resolved, nil
}

type rollbackRequest struct {
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.Lifecycle == nil {
		writeError(w, http.StatusNotImplemented, "no model lifecycle configured (start with a snapshot store)")
		return
	}
	var req rollbackRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	reason := req.Reason
	if reason == "" {
		reason = "manual"
	}
	pub, err := s.cfg.Lifecycle.Rollback(r.Context(), reason)
	if err != nil {
		if errors.Is(err, ErrNoRollbackTarget) {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusConflict, "rollback: %v", err)
		return
	}
	s.metrics.swaps.Add(1)
	writeJSON(w, http.StatusOK, pub)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	models, _ := s.reg.List()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": len(models)})
}
