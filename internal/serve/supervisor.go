package serve

import (
	"context"
	"log"
	"sync"
	"time"
)

// Supervisor periodically re-runs the canary against the live model so a
// model that degrades after publish — drifted data, a dependency gone bad,
// memory corruption — is caught by the same gate that admitted it, then
// quarantined and rolled back automatically. It is deliberately thin: all
// judgement lives in Lifecycle.Probe; the supervisor only provides the
// clock and the goroutine.
type Supervisor struct {
	lc       *Lifecycle
	interval time.Duration
	logf     func(format string, args ...any)

	mu      sync.Mutex
	kick    chan chan probeReply // nil once closed
	done    chan struct{}
	stopped sync.WaitGroup
}

type probeReply struct {
	out ProbeOutcome
	err error
}

// SupervisorConfig assembles a Supervisor.
type SupervisorConfig struct {
	// Lifecycle is the probed lifecycle. Required.
	Lifecycle *Lifecycle
	// Interval between probes. Default 30s.
	Interval time.Duration
	// Logf receives probe outcomes worth a human's attention (failures,
	// rollbacks). Default log.Printf; set to a no-op to silence.
	Logf func(format string, args ...any)
}

// StartSupervisor launches the probe loop. Stop it with Close.
func StartSupervisor(cfg SupervisorConfig) *Supervisor {
	sv := &Supervisor{
		lc:       cfg.Lifecycle,
		interval: cfg.Interval,
		logf:     cfg.Logf,
		kick:     make(chan chan probeReply),
		done:     make(chan struct{}),
	}
	if sv.interval <= 0 {
		sv.interval = 30 * time.Second
	}
	if sv.logf == nil {
		sv.logf = log.Printf
	}
	sv.stopped.Add(1)
	go sv.loop(sv.kick)
	return sv
}

// loop receives the kick channel by value: Close nils the struct field (to
// gate new ProbeNow calls) while the loop keeps draining the channel it was
// born with.
func (sv *Supervisor) loop(kick chan chan probeReply) {
	defer sv.stopped.Done()
	ticker := time.NewTicker(sv.interval)
	defer ticker.Stop()
	for {
		select {
		case <-sv.done:
			return
		case <-ticker.C:
			sv.probe(nil)
		case reply := <-kick:
			sv.probe(reply)
		}
	}
}

func (sv *Supervisor) probe(reply chan probeReply) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Unblock the canary run if Close happens mid-probe.
	go func() {
		select {
		case <-sv.done:
			cancel()
		case <-ctx.Done():
		}
	}()
	out, err := sv.lc.Probe(ctx)
	switch {
	case err != nil:
		sv.logf("serve: supervisor probe: %v", err)
	case out.Probed && !out.Result.Pass && out.RolledBack:
		sv.logf("serve: supervisor rolled back to generation %d: %s",
			out.RolledBackTo.Info.StoreGeneration, out.Result.Reason)
	}
	if reply != nil {
		reply <- probeReply{out: out, err: err}
	}
}

// ProbeNow runs one probe synchronously on the supervisor goroutine (so it
// serializes with scheduled probes) and returns its outcome. It returns a
// zero outcome after Close.
func (sv *Supervisor) ProbeNow() (ProbeOutcome, error) {
	reply := make(chan probeReply, 1)
	sv.mu.Lock()
	kick := sv.kick
	sv.mu.Unlock()
	if kick == nil {
		return ProbeOutcome{}, nil
	}
	select {
	case kick <- reply:
		r := <-reply
		return r.out, r.err
	case <-sv.done:
		return ProbeOutcome{}, nil
	}
}

// Close stops the probe loop and waits for any in-flight probe to finish.
// Safe to call twice.
func (sv *Supervisor) Close() {
	sv.mu.Lock()
	if sv.kick == nil {
		sv.mu.Unlock()
		return
	}
	sv.kick = nil
	sv.mu.Unlock()
	close(sv.done)
	sv.stopped.Wait()
}
