package serve

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"qfe/internal/estimator"
	"qfe/internal/table"
)

// Registry holds the named estimators a server routes requests to. Reads
// are lock-free: the whole name→entry view lives behind one atomic pointer
// to an immutable snapshot, so resolving a model costs a single atomic load
// and a map lookup. Writers (Register, SetDefault, LoadFile) serialize on a
// mutex, build a fresh snapshot, and publish it atomically — in-flight
// requests that already resolved an estimator keep the one they hold, which
// is exactly what makes hot-swapping a model safe: no request ever observes
// a half-replaced registry or loses its estimator mid-call.
type Registry struct {
	// Wrap, when non-nil, is applied to every estimator entering the
	// registry (Register and LoadFile). The server uses it to put the
	// resilience chain in front of each model.
	Wrap func(estimator.Estimator) estimator.Estimator

	mu   sync.Mutex // serializes writers
	gen  atomic.Uint64
	snap atomic.Pointer[regSnapshot]
}

// ModelInfo is the registry's public description of one entry, rendered by
// GET /v1/models.
type ModelInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`      // "local", "global", "hybrid", ...
	Estimator   string `json:"estimator"` // the (possibly wrapped) estimator's Name()
	Source      string `json:"source"`    // file path, or a caller-chosen tag like "boot"
	Models      int    `json:"models,omitempty"`
	MemoryBytes int    `json:"memoryBytes,omitempty"`
	Generation  uint64 `json:"generation"` // registry write that produced this entry

	// StoreGeneration is the crash-safe store generation backing this entry
	// (0 when the model was never persisted through the lifecycle).
	StoreGeneration uint64 `json:"storeGeneration,omitempty"`
	// Canary is the latest canary verdict for this entry: the admitting run
	// at publish time, refreshed by every supervisor probe.
	Canary *CanaryResult `json:"canary,omitempty"`
}

type regEntry struct {
	info ModelInfo
	est  estimator.Estimator
}

type regSnapshot struct {
	entries map[string]*regEntry
	names   []string // sorted
	def     string   // default model name, "" when empty
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.snap.Store(&regSnapshot{entries: map[string]*regEntry{}})
	return r
}

// Register installs est under name (replacing any previous entry with that
// name atomically) and returns the completed info. The first model ever
// registered becomes the default.
func (r *Registry) Register(name string, est estimator.Estimator, info ModelInfo) (ModelInfo, error) {
	if name == "" {
		return ModelInfo{}, fmt.Errorf("serve: model name must not be empty")
	}
	if est == nil {
		return ModelInfo{}, fmt.Errorf("serve: model %q has a nil estimator", name)
	}
	if r.Wrap != nil {
		est = r.Wrap(est)
	}
	info.Name = name
	info.Estimator = est.Name()
	if nm, ok := est.(interface{ NumModels() int }); ok && info.Models == 0 {
		info.Models = nm.NumModels()
	}
	if mb, ok := est.(interface{ MemoryBytes() int }); ok && info.MemoryBytes == 0 {
		info.MemoryBytes = mb.MemoryBytes()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	info.Generation = r.gen.Add(1)
	old := r.snap.Load()
	next := &regSnapshot{entries: make(map[string]*regEntry, len(old.entries)+1), def: old.def}
	for k, v := range old.entries {
		next.entries[k] = v
	}
	next.entries[name] = &regEntry{info: info, est: est}
	if next.def == "" {
		next.def = name
	}
	next.names = make([]string, 0, len(next.entries))
	for k := range next.entries {
		next.names = append(next.names, k)
	}
	sort.Strings(next.names)
	r.snap.Store(next)
	return info, nil
}

// Resolve returns the estimator registered under name; the empty string (or
// "default") resolves to the default model. The returned estimator stays
// valid for the caller's whole request even if the entry is swapped
// concurrently.
func (r *Registry) Resolve(name string) (estimator.Estimator, ModelInfo, error) {
	s := r.snap.Load()
	if name == "" || name == "default" {
		name = s.def
		if name == "" {
			return nil, ModelInfo{}, fmt.Errorf("serve: no models registered")
		}
	}
	e, ok := s.entries[name]
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("serve: unknown model %q (have %v)", name, s.names)
	}
	return e.est, e.info, nil
}

// List returns every entry's info in name order plus the default name.
func (r *Registry) List() ([]ModelInfo, string) {
	s := r.snap.Load()
	out := make([]ModelInfo, 0, len(s.names))
	for _, n := range s.names {
		out = append(out, s.entries[n].info)
	}
	return out, s.def
}

// UpdateInfo rewrites name's published info in place (same estimator, no
// re-wrap, no registry generation bump): the supervisor uses it to refresh
// canary status without disturbing traffic. mutate receives a copy; the
// mutated copy is published atomically.
func (r *Registry) UpdateInfo(name string, mutate func(*ModelInfo)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	e, ok := old.entries[name]
	if !ok {
		return fmt.Errorf("serve: unknown model %q (have %v)", name, old.names)
	}
	info := e.info
	mutate(&info)
	info.Name = name // the key is immutable
	next := &regSnapshot{entries: make(map[string]*regEntry, len(old.entries)), names: old.names, def: old.def}
	for k, v := range old.entries {
		next.entries[k] = v
	}
	next.entries[name] = &regEntry{info: info, est: e.est}
	r.snap.Store(next)
	return nil
}

// SetDefault makes name the default model.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	if _, ok := old.entries[name]; !ok {
		return fmt.Errorf("serve: unknown model %q (have %v)", name, old.names)
	}
	if old.def == name {
		return nil
	}
	next := &regSnapshot{entries: old.entries, names: old.names, def: name}
	r.snap.Store(next)
	return nil
}

// LoadFile restores a persisted estimator snapshot from path and registers
// it under name, optionally making it the default. db (may be nil for pure
// local/global snapshots, but servers should pass theirs) schema-validates
// the snapshot before it can take traffic. The slow work — file IO, JSON
// decode, model validation — happens before the write lock, so a load never
// stalls concurrent resolves or swaps for longer than a pointer publish.
func (r *Registry) LoadFile(name, path string, db *table.DB, makeDefault bool) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	defer f.Close()
	est, kind, err := estimator.LoadEstimator(f, db)
	if err != nil {
		return ModelInfo{}, err
	}
	info, err := r.Register(name, est, ModelInfo{Kind: kind, Source: path})
	if err != nil {
		return ModelInfo{}, err
	}
	if makeDefault {
		if err := r.SetDefault(name); err != nil {
			return ModelInfo{}, err
		}
	}
	return info, nil
}
