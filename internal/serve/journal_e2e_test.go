package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"qfe/internal/core"
	"qfe/internal/journal"
	"qfe/internal/replay"
	"qfe/internal/resilience/faultinject"
	"qfe/internal/store"
	"qfe/internal/testutil"
)

// This file is the acceptance test for the feedback-journal subsystem: real
// traffic with actuals served over a real HTTP listener lands in the
// journal, a torn-write crash hits mid-segment, recovery loses nothing that
// was acked, and the recovered journal drives both a deterministic replay
// report and a traffic-derived canary that gates a Lifecycle publish. A
// second test pins the shed-not-block contract with the journal wired into
// the serving feedback path.

// journalTestOptions: all flushing is driven by explicit Sync calls so the
// fault-injection op ordinals are deterministic.
func journalTestOptions(fsys store.FS) journal.Options {
	return journal.Options{
		SegmentBytes: 1 << 30,
		SegmentAge:   -1,
		Retain:       -1,
		Queue:        256,
		FlushBatch:   4096,
		FlushEvery:   time.Hour,
		FS:           fsys,
	}
}

// journalFeedback adapts serve feedback events into journal records exactly
// the way cmd/cardestd wires it.
func journalFeedback(jnl *journal.Journal) func(FeedbackEvent) {
	return func(ev FeedbackEvent) {
		jnl.Append(journal.Record{
			SQL:           ev.SQL,
			Fingerprint:   core.Fingerprint(ev.Query),
			Model:         ev.Model,
			Generation:    ev.Generation,
			Estimate:      ev.Estimate,
			Actual:        ev.Actual,
			HasActual:     ev.HasActual,
			LatencyMicros: ev.Latency.Microseconds(),
		})
	}
}

func e2eSQL(i int) string { return fmt.Sprintf("SELECT count(*) FROM t WHERE a >= %d", i) }

// postEstimate fires one estimate with an actual over a real TCP listener.
func postEstimate(t *testing.T, url string, i int) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"sql": e2eSQL(i), "actual": i + 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("estimate %d over the listener: %v", i, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate %d: status %d", i, resp.StatusCode)
	}
}

func TestJournalFeedbackEndToEnd(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	// Fault plan: op 1 is MkdirAll, op 2 commits the first batch, op 3 —
	// the second batch's append — tears mid-write: a power loss mid-segment.
	fi := faultinject.NewFS(nil, faultinject.FSConfig{Seed: 3, Kind: faultinject.FSTornWrite, Op: 3})
	jnl, err := journal.Open(dir, journalTestOptions(fi))
	if err != nil {
		t.Fatal(err)
	}

	srv := newStubServer(t, constEst(8), func(cfg *Config) {
		cfg.Feedback = journalFeedback(jnl)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 12; i++ {
		postEstimate(t, ts.URL, i)
	}
	if err := jnl.Sync(); err != nil {
		t.Fatalf("Sync of the first batch: %v", err)
	}
	acked := jnl.Stats().Persisted
	if acked != 12 {
		t.Fatalf("first batch persisted %d records, want 12", acked)
	}
	for i := 12; i < 16; i++ {
		postEstimate(t, ts.URL, i)
	}
	if err := jnl.Sync(); err == nil {
		t.Fatal("Sync across the torn write reported success")
	}
	jnl.Close() // the process "dies" with a torn tail mid-segment

	// Recovery on a healthy filesystem: zero acked records lost, nothing
	// torn resurrected.
	jnl2, err := journal.Open(dir, journalTestOptions(nil))
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer jnl2.Close()
	recs, err := jnl2.ReadSealed()
	if err != nil {
		t.Fatal(err)
	}
	byFirstPredicate := map[string]journal.Record{}
	for _, rec := range recs {
		byFirstPredicate[rec.SQL] = rec
	}
	for i := 0; i < 12; i++ {
		rec, ok := byFirstPredicate[e2eSQL(i)]
		if !ok {
			t.Fatalf("acked record %d lost in recovery (recovered %d total)", i, len(recs))
		}
		if !rec.HasActual || rec.Actual != float64(i)+1 || rec.Estimate != 8 || rec.Model == "" || rec.Fingerprint == "" {
			t.Fatalf("record %d recovered damaged: %+v", i, rec)
		}
	}
	for _, rec := range recs {
		var i int
		if _, err := fmt.Sscanf(rec.SQL, "SELECT count(*) FROM t WHERE a >= %d", &i); err != nil || i < 0 || i >= 16 {
			t.Fatalf("recovery resurrected a record that was never served: %+v", rec)
		}
	}

	// Deterministic replay report over the recovered traffic.
	repA := replay.Replay(context.Background(), constEst(8), recs)
	repB := replay.Replay(context.Background(), constEst(8), recs)
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("replay over recovered journal is not deterministic:\n%+v\n%+v", repA, repB)
	}
	if repA.Scored < 12 || repA.Unparsed != 0 {
		t.Fatalf("replay report %+v, want every recovered record scored", repA)
	}

	// Traffic-derived canary gating a Lifecycle publish. Actuals are 1..16
	// against constEst(8), so the honest model's q-errors top out at 8 —
	// inside the default ceilings — while the broken one fails by miles.
	canary := replay.DeriveCanary(recs, 8, 7)
	if len(canary) == 0 {
		t.Fatal("derived an empty canary from recovered traffic")
	}
	lc, err := NewLifecycle(LifecycleConfig{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.SetCanaryWorkload(context.Background(), canary); err != nil {
		t.Fatalf("SetCanaryWorkload: %v", err)
	}
	if lc.CanaryWorkloadSize() != len(canary) {
		t.Fatalf("canary workload size %d, want %d", lc.CanaryWorkloadSize(), len(canary))
	}
	pub, err := lc.Publish(context.Background(), PublishSpec{Name: "good", Est: constEst(8), MakeDefault: true})
	if err != nil || !pub.Canary.Pass {
		t.Fatalf("honest model rejected by the traffic canary: %+v, %v", pub.Canary, err)
	}
	_, err = lc.Publish(context.Background(), PublishSpec{Name: "bad", Est: constEst(1e9), MakeDefault: true})
	if !errors.Is(err, ErrCanaryRejected) {
		t.Fatalf("broken model passed the traffic canary (err %v)", err)
	}
	// Swapping in an empty canary must be refused — it would unlock the gate.
	if err := lc.SetCanaryWorkload(context.Background(), nil); err == nil {
		t.Fatal("empty canary workload accepted")
	}
}

// wedgeFS blocks every AppendFile until gate closes (signalling on entered),
// modeling a hung disk under the serving path.
type wedgeFS struct {
	store.FS
	entered chan struct{}
	gate    chan struct{}
}

func (w *wedgeFS) AppendFile(path string, data []byte) error {
	select {
	case w.entered <- struct{}{}:
	default:
	}
	<-w.gate
	return w.FS.AppendFile(path, data)
}

func TestJournalWedgedDiskShedsNotBlocks(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fsys := &wedgeFS{FS: store.OSFS(), entered: make(chan struct{}, 16), gate: make(chan struct{})}
	opts := journalTestOptions(fsys)
	opts.Queue = 1
	opts.FlushBatch = 1
	jnl, err := journal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			close(fsys.gate)
		}
	}
	defer func() { release(); jnl.Close() }()

	srv := newStubServer(t, constEst(8), func(cfg *Config) {
		cfg.Feedback = journalFeedback(jnl)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First request parks the writer inside the wedged AppendFile.
	postEstimate(t, ts.URL, 0)
	select {
	case <-fsys.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("journal writer never reached the disk")
	}
	// Every further request must be served promptly — the journal sheds;
	// serving latency must not inherit the disk's.
	start := time.Now()
	for i := 1; i <= 8; i++ {
		postEstimate(t, ts.URL, i)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("8 estimates over a wedged journal took %v; feedback must shed, not block", elapsed)
	}
	s := jnl.Stats()
	if s.Shed == 0 {
		t.Fatalf("stats = %+v, want sheds recorded while the disk hangs", s)
	}
	if s.Appended+s.Shed != 9 {
		t.Fatalf("stats = %+v, want all 9 feedback events accounted (appended+shed)", s)
	}
	release() // disk recovers; whatever was accepted drains without loss
	if err := jnl.Sync(); err != nil {
		t.Fatalf("Sync after the disk recovered: %v", err)
	}
	if got := jnl.Stats(); got.Persisted != s.Appended {
		t.Fatalf("persisted %d of %d accepted records after recovery", got.Persisted, s.Appended)
	}
}
