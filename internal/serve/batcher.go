package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/parallel"
	"qfe/internal/resilience"
	"qfe/internal/sqlparse"
)

// The request batcher coalesces concurrent single-query requests into
// batches fed through the parallel estimation path (internal/parallel, the
// same worker discipline as the PR-2 labeling/training pools). A lone
// request under light load flushes after MaxDelay; under heavy load batches
// fill to MaxBatch and flush immediately, so added latency is bounded by
// MaxDelay and amortized scheduling makes throughput scale with cores
// instead of goroutine wakeups.

// ErrServerClosed is returned for requests submitted after the batcher
// began draining.
var ErrServerClosed = errors.New("serve: server is shutting down")

// errQueueFull is returned when the batch queue cannot take another request
// (only possible when the queue is sized below the admission bound).
var errQueueFull = errors.New("serve: batch queue full")

// BatcherConfig tunes coalescing.
type BatcherConfig struct {
	// MaxBatch is the largest coalesced batch; a full batch flushes
	// immediately. Default 16.
	MaxBatch int
	// MaxDelay is how long an open batch waits for company before flushing.
	// Default 2ms; 0 flushes with whatever is instantly available.
	MaxDelay time.Duration
	// Workers bounds the goroutines a flush fans out over
	// (internal/parallel semantics: <1 means one per logical CPU).
	Workers int
	// Queue is the pending-request channel capacity. Size it at least as
	// large as the admission bound so an admitted request never finds the
	// queue full. Default 64.
	Queue int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch < 1 {
		c.MaxBatch = 16
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.Queue < 1 {
		c.Queue = 64
	}
	return c
}

// EstResult is one query's outcome.
type EstResult struct {
	Estimate float64
	// Stage and Degraded carry through from the resilience chain when the
	// estimator is a *resilience.Resilient; otherwise Stage is empty.
	Stage    string
	Degraded bool
	Err      error
}

type estReq struct {
	ctx  context.Context
	est  estimator.Estimator
	q    *sqlparse.Query
	done chan EstResult
}

// batcher coalesces estimate requests. Create with newBatcher; Close drains.
type batcher struct {
	cfg     BatcherConfig
	onBatch func(n int) // metrics hook, may be nil

	mu     sync.RWMutex // guards closed vs. sends on ch
	closed bool
	ch     chan *estReq
	wg     sync.WaitGroup // run loop + in-flight flushes
}

func newBatcher(cfg BatcherConfig, onBatch func(int)) *batcher {
	b := &batcher{cfg: cfg.withDefaults(), onBatch: onBatch}
	b.ch = make(chan *estReq, b.cfg.Queue)
	b.wg.Add(1)
	go b.run()
	return b
}

// Do estimates one query, waiting for its batch to flush — but never past
// the caller's context: a canceled request unblocks immediately with
// ctx.Err() instead of riding out MaxDelay in a batch whose answer nobody
// will read. The enqueued request still flushes (flush writes into the
// buffered done channel and never blocks); only the wait is abandoned.
func (b *batcher) Do(ctx context.Context, est estimator.Estimator, q *sqlparse.Query) EstResult {
	r := &estReq{ctx: ctx, est: est, q: q, done: make(chan EstResult, 1)}
	if err := b.submit(r); err != nil {
		return EstResult{Err: err}
	}
	select {
	case res := <-r.done:
		return res
	case <-ctx.Done():
		return EstResult{Err: ctx.Err()}
	}
}

// DoBatch estimates a client-supplied batch, bypassing the coalescing queue
// (the client already batched). Estimators with a compiled batch form
// (estimator.BatchEstimator) take it — one pooled featurization matrix, one
// batch predict — and everything else goes through the parallel per-query
// path.
func (b *batcher) DoBatch(ctx context.Context, est estimator.Estimator, qs []*sqlparse.Query) []EstResult {
	out := make([]EstResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	if b.onBatch != nil {
		b.onBatch(len(qs))
	}
	if be, ok := est.(estimator.BatchEstimator); ok {
		ests, errs := be.EstimateBatch(ctx, qs)
		for i := range out {
			out[i] = EstResult{Estimate: ests[i], Err: errs[i]}
		}
		return out
	}
	parallel.Do(len(qs), parallel.Workers(b.cfg.Workers), func(i int) {
		out[i] = estimateOne(ctx, est, qs[i])
	})
	return out
}

func (b *batcher) submit(r *estReq) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrServerClosed
	}
	select {
	case b.ch <- r:
		return nil
	default:
		return errQueueFull
	}
}

// Close stops accepting requests, flushes everything already queued, and
// waits for in-flight flushes to finish.
func (b *batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	close(b.ch)
	b.mu.Unlock()
	b.wg.Wait()
}

// run is the coalescing loop: take one request, hold the batch open until
// MaxBatch or MaxDelay, then flush asynchronously so collection of the next
// batch overlaps with estimation of this one.
func (b *batcher) run() {
	defer b.wg.Done()
	for {
		first, ok := <-b.ch
		if !ok {
			return
		}
		batch := b.collect(first)
		b.wg.Add(1)
		go func(batch []*estReq) {
			defer b.wg.Done()
			b.flush(batch)
		}(batch)
	}
}

func (b *batcher) collect(first *estReq) []*estReq {
	batch := []*estReq{first}
	if b.cfg.MaxDelay <= 0 {
		// Opportunistic: take whatever is already queued, never wait.
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r, ok := <-b.ch:
				if !ok {
					return batch
				}
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(b.cfg.MaxDelay)
	defer timer.Stop()
	for len(batch) < b.cfg.MaxBatch {
		select {
		case r, ok := <-b.ch:
			if !ok {
				// Channel drained and closed: flush what we have; the next
				// loop iteration in run sees the close and exits.
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

func (b *batcher) flush(batch []*estReq) {
	if b.onBatch != nil {
		b.onBatch(len(batch))
	}
	if b.flushBatched(batch) {
		return
	}
	parallel.Do(len(batch), parallel.Workers(b.cfg.Workers), func(i int) {
		r := batch[i]
		r.done <- estimateOne(r.ctx, r.est, r.q)
	})
}

// flushBatched answers a coalesced flush through the estimator's compiled
// batch path when every request targets the same BatchEstimator: one pooled
// featurization matrix, one batch predict, instead of per-query goroutine
// fan-out. Returns false to use the per-query parallel path (mixed
// estimators, or estimators without a batch form — notably resilience
// chains, whose staged fallbacks are inherently per-query). Requests whose
// context is already dead are answered with its error before featurizing;
// the batch itself is fast enough that mid-batch cancellation is handled by
// Do abandoning the wait, exactly as on the per-query path.
func (b *batcher) flushBatched(batch []*estReq) bool {
	be, ok := batch[0].est.(estimator.BatchEstimator)
	if !ok {
		return false
	}
	for _, r := range batch[1:] {
		if r.est != batch[0].est {
			return false
		}
	}
	qs := make([]*sqlparse.Query, 0, len(batch))
	live := make([]*estReq, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- EstResult{Err: err}
			continue
		}
		qs = append(qs, r.q)
		live = append(live, r)
	}
	if len(qs) == 0 {
		return true
	}
	ests, errs := be.EstimateBatch(context.Background(), qs)
	for i, r := range live {
		r.done <- EstResult{Estimate: ests[i], Err: errs[i]}
	}
	return true
}

// estimateOne dispatches one query, preserving the resilience chain's
// detailed outcome when available.
func estimateOne(ctx context.Context, est estimator.Estimator, q *sqlparse.Query) EstResult {
	if res, ok := est.(*resilience.Resilient); ok {
		d := res.EstimateDetailed(ctx, q)
		return EstResult{Estimate: d.Estimate, Stage: d.Stage, Degraded: d.Degraded}
	}
	v, err := estimator.EstimateWithContext(ctx, est, q)
	return EstResult{Estimate: v, Err: err}
}
