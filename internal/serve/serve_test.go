package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/ml/gb"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/testutil"
	"qfe/internal/workload"
)

// ---- shared fixtures ----

var (
	envOnce sync.Once
	envDB   *table.DB
	envSet  workload.Set
	envErr  error
)

// testEnv builds (once) a small forest database plus a labeled conjunctive
// workload for the tests that need real estimators.
func testEnv(tb testing.TB) (*table.DB, workload.Set) {
	tb.Helper()
	envOnce.Do(func() {
		tbl, err := dataset.Forest(dataset.ForestConfig{Rows: 3000, QuantAttrs: 5, BinaryAttrs: 1, Seed: 7})
		if err != nil {
			envErr = err
			return
		}
		db := table.NewDB()
		db.MustAdd(tbl)
		set, err := workload.Conjunctive(tbl, workload.ConjConfig{Count: 900, MaxAttrs: 4, MaxNotEquals: 2, Seed: 3})
		if err != nil {
			envErr = err
			return
		}
		envDB, envSet = db, set
	})
	if envErr != nil {
		tb.Fatal(envErr)
	}
	return envDB, envSet
}

// trainLocal fits a small GB-backed local estimator on train.
func trainLocal(tb testing.TB, db *table.DB, train workload.Set, entries int) *estimator.Local {
	tb.Helper()
	cfg := gb.DefaultConfig()
	cfg.NumTrees = 40
	cfg.MaxDepth = 5
	cfg.Seed = 1
	loc, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: entries, AttrSel: true},
		NewRegressor: estimator.NewGBFactory(cfg),
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := loc.Train(train); err != nil {
		tb.Fatal(err)
	}
	return loc
}

// constEst answers every query with a fixed value; it keeps handler tests
// independent of model training.
type constEst float64

func (c constEst) Name() string                              { return "const" }
func (c constEst) Estimate(*sqlparse.Query) (float64, error) { return float64(c), nil }

// errEst always fails, driving the 422 path.
type errEst struct{}

func (errEst) Name() string { return "err" }
func (errEst) Estimate(*sqlparse.Query) (float64, error) {
	return 0, fmt.Errorf("no model for this sub-schema")
}

// blockingEst signals each call on started, then blocks until release closes.
// It makes admission and drain tests deterministic.
type blockingEst struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingEst) Name() string { return "blocking" }
func (b *blockingEst) Estimate(*sqlparse.Query) (float64, error) {
	b.started <- struct{}{}
	<-b.release
	return 42, nil
}

// stubSQL parses without needing any particular database (the stub servers
// run with a nil DB, so nothing binds).
const stubSQL = "SELECT count(*) FROM t WHERE a >= 1"

// newStubServer builds a server around a single registered stub estimator.
// Every stub-server test also verifies that no server goroutine outlives it
// (the leak check registers first, so it runs after srv.Close).
func newStubServer(tb testing.TB, est estimator.Estimator, mutate func(*Config)) *Server {
	tb.Helper()
	testutil.VerifyNoLeaks(tb)
	reg := NewRegistry()
	if _, err := reg.Register("stub", est, ModelInfo{Kind: "stub", Source: "test"}); err != nil {
		tb.Fatal(err)
	}
	cfg := Config{Registry: reg, Batcher: BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond}}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	return srv
}

// postJSON posts body to path on h and returns the status code plus the
// decoded JSON response.
func postJSON(tb testing.TB, h http.Handler, path string, body any) (int, map[string]any) {
	tb.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	return rawPost(tb, h, path, buf)
}

func rawPost(tb testing.TB, h http.Handler, path string, body []byte) (int, map[string]any) {
	tb.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var v map[string]any
	if len(bytes.TrimSpace(rec.Body.Bytes())) > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			tb.Fatalf("response %q is not JSON: %v", rec.Body.String(), err)
		}
	}
	return rec.Code, v
}

func getJSON(tb testing.TB, h http.Handler, path string) (int, map[string]any) {
	tb.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var v map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		tb.Fatalf("response %q is not JSON: %v", rec.Body.String(), err)
	}
	return rec.Code, v
}

// ---- handler behavior ----

func TestEstimateSingle(t *testing.T) {
	srv := newStubServer(t, constEst(42), nil)
	h := srv.Handler()

	code, resp := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL, "actual": 84})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %v", code, resp)
	}
	if resp["estimate"] != 42.0 {
		t.Errorf("estimate = %v, want 42", resp["estimate"])
	}
	if resp["model"] != "stub" {
		t.Errorf("model = %v, want stub", resp["model"])
	}

	snap := srv.Metrics().Snapshot()
	if snap["requests_total"] != int64(1) || snap["queries_total"] != int64(1) {
		t.Errorf("metrics: %v requests / %v queries, want 1 / 1", snap["requests_total"], snap["queries_total"])
	}
	// actual=84 vs estimate=42 is a q-error of 2; it must land in the
	// histogram.
	qe := snap["qerror"].(map[string]any)
	if qe["count"] != int64(1) {
		t.Errorf("qerror count = %v, want 1 (feedback was supplied)", qe["count"])
	}
}

func TestEstimateBatch(t *testing.T) {
	srv := newStubServer(t, constEst(7), nil)
	h := srv.Handler()

	code, resp := postJSON(t, h, "/v1/estimate", map[string]any{
		"queries": []map[string]any{
			{"sql": stubSQL},
			{"sql": "this is not sql"},
			{"sql": stubSQL, "actual": 7},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %v", code, resp)
	}
	results, ok := resp["results"].([]any)
	if !ok || len(results) != 3 {
		t.Fatalf("results = %v, want 3 entries", resp["results"])
	}
	r0 := results[0].(map[string]any)
	r1 := results[1].(map[string]any)
	r2 := results[2].(map[string]any)
	if r0["estimate"] != 7.0 || r2["estimate"] != 7.0 {
		t.Errorf("good items: estimates %v / %v, want 7 / 7", r0["estimate"], r2["estimate"])
	}
	if r1["error"] == nil || r1["error"] == "" {
		t.Errorf("malformed item: error = %v, want a parse error", r1["error"])
	}

	snap := srv.Metrics().Snapshot()
	if snap["requests_total"] != int64(1) {
		t.Errorf("requests_total = %v, want 1", snap["requests_total"])
	}
	if snap["queries_total"] != int64(2) {
		t.Errorf("queries_total = %v, want 2 (parseable items only)", snap["queries_total"])
	}
	if snap["estimate_errors_total"] != int64(1) {
		t.Errorf("estimate_errors_total = %v, want 1", snap["estimate_errors_total"])
	}
	if snap["batched_queries_total"] != int64(2) {
		t.Errorf("batched_queries_total = %v, want 2", snap["batched_queries_total"])
	}
	qe := snap["qerror"].(map[string]any)
	if qe["count"] != int64(1) {
		t.Errorf("qerror count = %v, want 1 (one item carried feedback)", qe["count"])
	}
}

func TestEstimateValidation(t *testing.T) {
	srv := newStubServer(t, constEst(1), func(c *Config) { c.MaxQueriesPerRequest = 2 })
	h := srv.Handler()

	t.Run("method", func(t *testing.T) {
		code, _ := getJSON(t, h, "/v1/estimate")
		if code != http.StatusMethodNotAllowed {
			t.Errorf("GET: status %d, want 405", code)
		}
	})
	t.Run("bad json", func(t *testing.T) {
		code, resp := rawPost(t, h, "/v1/estimate", []byte("{nope"))
		if code != http.StatusBadRequest || resp["error"] == nil {
			t.Errorf("status %d body %v, want 400 with error", code, resp)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		code, _ := rawPost(t, h, "/v1/estimate", []byte(`{"sql":"x","bogus":1}`))
		if code != http.StatusBadRequest {
			t.Errorf("status %d, want 400", code)
		}
	})
	t.Run("neither sql nor queries", func(t *testing.T) {
		code, _ := rawPost(t, h, "/v1/estimate", []byte(`{}`))
		if code != http.StatusBadRequest {
			t.Errorf("status %d, want 400", code)
		}
	})
	t.Run("both sql and queries", func(t *testing.T) {
		code, _ := postJSON(t, h, "/v1/estimate", map[string]any{
			"sql": stubSQL, "queries": []map[string]any{{"sql": stubSQL}},
		})
		if code != http.StatusBadRequest {
			t.Errorf("status %d, want 400", code)
		}
	})
	t.Run("batch too large", func(t *testing.T) {
		code, _ := postJSON(t, h, "/v1/estimate", map[string]any{
			"queries": []map[string]any{{"sql": stubSQL}, {"sql": stubSQL}, {"sql": stubSQL}},
		})
		if code != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413", code)
		}
	})
	t.Run("unknown model", func(t *testing.T) {
		code, _ := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL, "model": "nope"})
		if code != http.StatusNotFound {
			t.Errorf("status %d, want 404", code)
		}
	})
	t.Run("unparseable sql", func(t *testing.T) {
		code, _ := postJSON(t, h, "/v1/estimate", map[string]any{"sql": "DROP TABLE t"})
		if code != http.StatusBadRequest {
			t.Errorf("status %d, want 400", code)
		}
	})

	snap := srv.Metrics().Snapshot()
	if snap["responses_4xx"].(int64) < 7 {
		t.Errorf("responses_4xx = %v, want >= 7", snap["responses_4xx"])
	}
	if snap["responses_5xx"] != int64(0) {
		t.Errorf("responses_5xx = %v, want 0", snap["responses_5xx"])
	}
}

func TestEstimateFailureIs422(t *testing.T) {
	srv := newStubServer(t, errEst{}, nil)
	code, resp := postJSON(t, srv.Handler(), "/v1/estimate", map[string]any{"sql": stubSQL})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", code)
	}
	if resp["error"] == nil || resp["error"] == "" {
		t.Errorf("error = %v, want the estimation failure", resp["error"])
	}
	if got := srv.Metrics().Snapshot()["estimate_errors_total"]; got != int64(1) {
		t.Errorf("estimate_errors_total = %v, want 1", got)
	}
}

func TestModelsEndpoint(t *testing.T) {
	srv := newStubServer(t, constEst(1), nil)
	code, resp := getJSON(t, srv.Handler(), "/v1/models")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp["default"] != "stub" {
		t.Errorf("default = %v, want stub", resp["default"])
	}
	models := resp["models"].([]any)
	if len(models) != 1 {
		t.Fatalf("models = %v, want 1 entry", models)
	}
	m := models[0].(map[string]any)
	if m["name"] != "stub" || m["kind"] != "stub" || m["source"] != "test" {
		t.Errorf("model info = %v", m)
	}
}

func TestLoadEndpointValidation(t *testing.T) {
	srv := newStubServer(t, constEst(1), nil)
	h := srv.Handler()
	if code, _ := getJSON(t, h, "/v1/models/load"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", code)
	}
	if code, _ := rawPost(t, h, "/v1/models/load", []byte(`{}`)); code != http.StatusBadRequest {
		t.Errorf("missing fields: status %d, want 400", code)
	}
	code, resp := postJSON(t, h, "/v1/models/load", map[string]any{"name": "x", "path": "/no/such/file"})
	if code != http.StatusBadRequest {
		t.Errorf("bad path: status %d body %v, want 400", code, resp)
	}
	if got := srv.Metrics().Snapshot()["model_swaps_total"]; got != int64(0) {
		t.Errorf("model_swaps_total = %v after failed loads, want 0", got)
	}
}

func TestHealthz(t *testing.T) {
	srv := newStubServer(t, constEst(1), nil)
	h := srv.Handler()
	code, resp := getJSON(t, h, "/healthz")
	if code != http.StatusOK || resp["status"] != "ok" {
		t.Fatalf("healthy: status %d body %v", code, resp)
	}
	srv.Drain()
	code, resp = getJSON(t, h, "/healthz")
	if code != http.StatusServiceUnavailable || resp["status"] != "draining" {
		t.Fatalf("draining: status %d body %v", code, resp)
	}
}

// ---- admission control ----

// TestAdmissionControl verifies the bounded in-flight semaphore: with
// MaxInFlight requests blocked inside estimation, the next request is shed
// with 429 + Retry-After instead of queueing, and the blocked requests still
// complete once the estimator unblocks.
func TestAdmissionControl(t *testing.T) {
	est := &blockingEst{started: make(chan struct{}), release: make(chan struct{})}
	srv := newStubServer(t, est, func(c *Config) {
		c.MaxInFlight = 2
		c.RetryAfter = 3 * time.Second
		c.Batcher = BatcherConfig{MaxBatch: 1} // flush each request alone
	})
	h := srv.Handler()

	type outcome struct {
		code int
		resp map[string]any
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, resp := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL})
			results <- outcome{code, resp}
		}()
	}
	// Both requests are inside the estimator (holding their admission slots)
	// before the third arrives.
	<-est.started
	<-est.started

	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader([]byte(`{"sql":"`+stubSQL+`"}`)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q", ra, "3")
	}

	close(est.release)
	for i := 0; i < 2; i++ {
		o := <-results
		if o.code != http.StatusOK || o.resp["estimate"] != 42.0 {
			t.Errorf("blocked request %d: status %d body %v, want 200/42", i, o.code, o.resp)
		}
	}

	snap := srv.Metrics().Snapshot()
	if snap["shed_total"] != int64(1) {
		t.Errorf("shed_total = %v, want 1", snap["shed_total"])
	}
	if snap["requests_total"] != int64(2) {
		t.Errorf("requests_total = %v, want 2 (shed requests are not admitted)", snap["requests_total"])
	}
	if snap["in_flight"] != int64(0) {
		t.Errorf("in_flight = %v after completion, want 0", snap["in_flight"])
	}
}

// ---- hot-swap end to end ----

// TestHotSwapEndToEnd is the acceptance scenario: serve a trained model over
// a real listener, hot-swap a second trained model via POST /v1/models/load
// while a concurrent client loop hammers /v1/estimate, and require zero
// failed requests, the new model's estimates after the swap acks, and
// metrics consistent with the load.
func TestHotSwapEndToEnd(t *testing.T) {
	db, set := testEnv(t)
	train := set[:500]

	// Two deliberately different models: different feature budgets and
	// training halves make their estimates differ on most queries.
	locA := trainLocal(t, db, train[:250], 16)
	locB := trainLocal(t, db, train[250:], 8)

	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	for _, sv := range []struct {
		loc  *estimator.Local
		path string
	}{{locA, pathA}, {locB, pathB}} {
		f, err := os.Create(sv.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := sv.loc.SaveJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Find a probe query the two models disagree on, and compute the exact
	// estimates the *loaded* snapshots will serve.
	var probeSQL string
	var wantA, wantB float64
	for _, l := range set[500:560] {
		a, err := locA.Estimate(l.Query)
		if err != nil {
			continue
		}
		b, err := locB.Estimate(l.Query)
		if err != nil {
			continue
		}
		if a != b {
			probeSQL, wantA, wantB = l.Query.String(), a, b
			break
		}
	}
	if probeSQL == "" {
		t.Fatal("no probe query distinguishes the two models")
	}

	reg := NewRegistry()
	if _, err := reg.LoadFile("live", pathA, db, true); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Registry:    reg,
		DB:          db,
		Batcher:     BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
		MaxInFlight: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body any) (int, map[string]any, error) {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, v, nil
	}

	const clients, perClient = 6, 30
	estBody := map[string]any{"sql": probeSQL}
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, resp, err := post("/v1/estimate", estBody)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("estimate failed during swap: status %d body %v", code, resp)
					return
				}
				got := resp["estimate"].(float64)
				if got != wantA && got != wantB {
					errs <- fmt.Errorf("estimate %v matches neither model (%v / %v)", got, wantA, wantB)
					return
				}
			}
		}()
	}

	// Let the loop get going, then swap the live model in-place.
	time.Sleep(20 * time.Millisecond)
	code, resp, err := post("/v1/models/load", map[string]any{"name": "live", "path": pathB, "default": true})
	if err != nil || code != http.StatusOK {
		t.Fatalf("hot-swap load: status %d body %v err %v", code, resp, err)
	}
	if resp["source"] != pathB || resp["generation"].(float64) < 2 {
		t.Errorf("swap info = %v, want source %s and generation >= 2", resp, pathB)
	}

	// Requests issued after the swap ack must be served by model B.
	code, resp, err = post("/v1/estimate", estBody)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-swap estimate: status %d err %v", code, err)
	}
	if resp["estimate"] != wantB {
		t.Errorf("post-swap estimate = %v, want model B's %v", resp["estimate"], wantB)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := srv.Metrics().Snapshot()
	wantReqs := int64(clients*perClient + 1) // the loop plus the post-swap probe
	if snap["model_swaps_total"] != int64(1) {
		t.Errorf("model_swaps_total = %v, want 1", snap["model_swaps_total"])
	}
	if snap["requests_total"] != wantReqs {
		t.Errorf("requests_total = %v, want %v", snap["requests_total"], wantReqs)
	}
	if snap["queries_total"] != snap["requests_total"] {
		t.Errorf("queries_total = %v, want %v (all requests were single-query)", snap["queries_total"], snap["requests_total"])
	}
	lat := snap["latency_micros"].(map[string]any)
	if lat["count"] != snap["queries_total"] {
		t.Errorf("latency histogram count = %v, want %v", lat["count"], snap["queries_total"])
	}
	if snap["responses_5xx"] != int64(0) {
		t.Errorf("responses_5xx = %v, want 0", snap["responses_5xx"])
	}
	if snap["shed_total"] != int64(0) || snap["drained_total"] != int64(0) {
		t.Errorf("shed/drained = %v/%v, want 0/0", snap["shed_total"], snap["drained_total"])
	}
}

// TestRetryAfterSeconds: the Retry-After header takes integer seconds; any
// positive configured delay must round up and never render as 0 (which
// clients read as "retry immediately", regression for sub-second configs).
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Nanosecond, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{90 * time.Second, 90},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestShedSetsUsableRetryAfter: end to end, a shed request under a
// sub-second RetryAfter config must carry a parseable, nonzero header.
func TestShedSetsUsableRetryAfter(t *testing.T) {
	est := &blockingEst{started: make(chan struct{}), release: make(chan struct{})}
	srv := newStubServer(t, est, func(cfg *Config) {
		cfg.MaxInFlight = 1
		cfg.RetryAfter = 250 * time.Millisecond
	})
	h := srv.Handler()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL})
	}()
	<-est.started // the slot is occupied
	defer func() {
		close(est.release)
		<-done
	}()

	req := httptest.NewRequest(http.MethodPost, "/v1/estimate",
		strings.NewReader(`{"sql":"`+stubSQL+`"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}
}
