package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"qfe/internal/sqlparse"
)

func TestFiniteActual(t *testing.T) {
	for _, v := range []float64{0, -1, 1, 1e308} {
		if !finiteActual(v) {
			t.Errorf("finiteActual(%v) = false, want true", v)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if finiteActual(v) {
			t.Errorf("finiteActual(%v) = true, want false", v)
		}
	}
}

// TestEstimateRejectsNonFiniteActual proves the ingestion edge is closed:
// an out-of-range JSON number fails at the decoder, and a crafted non-finite
// value that somehow got past it would fail the explicit check — either
// way the request gets a 400, and nothing non-finite reaches the q-error
// histogram or the drift detectors.
func TestEstimateRejectsNonFiniteActual(t *testing.T) {
	srv := newStubServer(t, constEst(42), nil)
	h := srv.Handler()

	code, _ := rawPost(t, h, "/v1/estimate", []byte(`{"sql": "SELECT count(*) FROM t WHERE a >= 1", "actual": 1e400}`))
	if code != http.StatusBadRequest {
		t.Errorf("single with actual=1e400: status %d, want 400", code)
	}
	code, resp := rawPost(t, h, "/v1/estimate", []byte(`{"queries": [{"sql": "q", "actual": 1e400}]}`))
	if code != http.StatusBadRequest {
		t.Errorf("batch with actual=1e400: status %d, body %v, want 400", code, resp)
	}
	if qe := srv.Metrics().Snapshot()["qerror"].(map[string]any); qe["count"] != int64(0) {
		t.Errorf("qerror histogram count = %v after rejected feedback, want 0", qe["count"])
	}
}

func TestFeedbackHookObservesServedQueries(t *testing.T) {
	type obs struct {
		tables      int
		est, actual float64
	}
	var mu sync.Mutex
	var seen []obs
	srv := newStubServer(t, constEst(42), func(cfg *Config) {
		cfg.Feedback = func(q *sqlparse.Query, est, actual float64) {
			mu.Lock()
			seen = append(seen, obs{tables: len(q.Tables), est: est, actual: actual})
			mu.Unlock()
		}
	})
	h := srv.Handler()

	if code, _ := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL, "actual": 84}); code != http.StatusOK {
		t.Fatalf("single estimate status %d", code)
	}
	if code, _ := postJSON(t, h, "/v1/estimate", map[string]any{"queries": []map[string]any{
		{"sql": stubSQL, "actual": 21},
		{"sql": stubSQL}, // no feedback: hook still sees the query with actual 0
	}}); code != http.StatusOK {
		t.Fatalf("batch estimate status %d", code)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("feedback hook saw %d queries, want 3", len(seen))
	}
	if seen[0].est != 42 || seen[0].actual != 84 {
		t.Errorf("single feedback = %+v, want est 42 actual 84", seen[0])
	}
	actuals := map[float64]bool{seen[1].actual: true, seen[2].actual: true}
	if !actuals[21] || !actuals[0] {
		t.Errorf("batch feedback actuals = %+v, want {21, 0}", actuals)
	}
}

func TestFeedbackHookSkipsFailedEstimates(t *testing.T) {
	var calls int
	srv := newStubServer(t, errEst{}, func(cfg *Config) {
		cfg.Feedback = func(*sqlparse.Query, float64, float64) { calls++ }
	})
	postJSON(t, srv.Handler(), "/v1/estimate", map[string]any{"sql": stubSQL, "actual": 10})
	if calls != 0 {
		t.Errorf("feedback hook ran %d times for a failed estimate, want 0", calls)
	}
}

func TestExtraMetricsMergedIntoSnapshot(t *testing.T) {
	srv := newStubServer(t, constEst(1), func(cfg *Config) {
		cfg.ExtraMetrics = func() map[string]any {
			return map[string]any{
				"drift_alarms_qerror": uint64(3),
				"requests_total":      int64(999999), // collision: the server's value must win
			}
		}
	})
	code, m := getJSON(t, srv.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if m["drift_alarms_qerror"] != 3.0 {
		t.Errorf("drift_alarms_qerror = %v, want 3", m["drift_alarms_qerror"])
	}
	if m["requests_total"] == 999999.0 {
		t.Error("extra metrics overrode a built-in counter; built-ins must win")
	}
}

func TestStatusPages(t *testing.T) {
	srv := newStubServer(t, constEst(1), func(cfg *Config) {
		cfg.StatusPages = map[string]func() any{
			"/v1/drift": func() any { return map[string]any{"observed": 7} },
		}
	})
	h := srv.Handler()
	code, v := getJSON(t, h, "/v1/drift")
	if code != http.StatusOK || v["observed"] != 7.0 {
		t.Fatalf("GET /v1/drift = (%d, %v), want 200 with observed 7", code, v)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/drift", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/drift status %d, want 405", rec.Code)
	}
}
