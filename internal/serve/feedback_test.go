package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestFiniteActual(t *testing.T) {
	if !finiteActual(nil) {
		t.Error("finiteActual(nil) = false, want true (absent feedback is fine)")
	}
	for _, v := range []float64{0, -1, 1, 1e308} {
		v := v
		if !finiteActual(&v) {
			t.Errorf("finiteActual(%v) = false, want true", v)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		v := v
		if finiteActual(&v) {
			t.Errorf("finiteActual(%v) = true, want false", v)
		}
	}
}

// TestActualValue pins the has-actual decision table: nil and negative mean
// "no feedback", while an explicit zero is a genuine empty result — the
// exact ambiguity the pointer-typed wire field exists to remove.
func TestActualValue(t *testing.T) {
	if v, ok := actualValue(nil); ok || v != 0 {
		t.Errorf("actualValue(nil) = (%v, %v), want (0, false)", v, ok)
	}
	neg := -1.0
	if v, ok := actualValue(&neg); ok || v != 0 {
		t.Errorf("actualValue(-1) = (%v, %v), want (0, false)", v, ok)
	}
	zero := 0.0
	if v, ok := actualValue(&zero); !ok || v != 0 {
		t.Errorf("actualValue(0) = (%v, %v), want (0, true): explicit zero IS feedback", v, ok)
	}
	pos := 21.0
	if v, ok := actualValue(&pos); !ok || v != 21 {
		t.Errorf("actualValue(21) = (%v, %v), want (21, true)", v, ok)
	}
}

// TestEstimateRejectsNonFiniteActual proves the ingestion edge is closed:
// an out-of-range JSON number fails at the decoder, and a crafted non-finite
// value that somehow got past it would fail the explicit check — either
// way the request gets a 400, and nothing non-finite reaches the q-error
// histogram or the drift detectors.
func TestEstimateRejectsNonFiniteActual(t *testing.T) {
	srv := newStubServer(t, constEst(42), nil)
	h := srv.Handler()

	code, _ := rawPost(t, h, "/v1/estimate", []byte(`{"sql": "SELECT count(*) FROM t WHERE a >= 1", "actual": 1e400}`))
	if code != http.StatusBadRequest {
		t.Errorf("single with actual=1e400: status %d, want 400", code)
	}
	code, resp := rawPost(t, h, "/v1/estimate", []byte(`{"queries": [{"sql": "q", "actual": 1e400}]}`))
	if code != http.StatusBadRequest {
		t.Errorf("batch with actual=1e400: status %d, body %v, want 400", code, resp)
	}
	if qe := srv.Metrics().Snapshot()["qerror"].(map[string]any); qe["count"] != int64(0) {
		t.Errorf("qerror histogram count = %v after rejected feedback, want 0", qe["count"])
	}
}

func TestFeedbackHookObservesServedQueries(t *testing.T) {
	var mu sync.Mutex
	var seen []FeedbackEvent
	srv := newStubServer(t, constEst(42), func(cfg *Config) {
		cfg.Feedback = func(ev FeedbackEvent) {
			mu.Lock()
			seen = append(seen, ev)
			mu.Unlock()
		}
	})
	h := srv.Handler()

	if code, _ := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL, "actual": 84}); code != http.StatusOK {
		t.Fatalf("single estimate status %d", code)
	}
	if code, _ := postJSON(t, h, "/v1/estimate", map[string]any{"queries": []map[string]any{
		{"sql": stubSQL, "actual": 21},
		{"sql": stubSQL, "actual": 0}, // explicit zero: genuine empty-result feedback
		{"sql": stubSQL},              // absent: the hook still sees the query, without an actual
	}}); code != http.StatusOK {
		t.Fatalf("batch estimate status %d", code)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("feedback hook saw %d queries, want 4", len(seen))
	}
	first := seen[0]
	if first.Estimate != 42 || first.Actual != 84 || !first.HasActual {
		t.Errorf("single feedback = %+v, want est 42 actual 84 hasActual", first)
	}
	if first.SQL != stubSQL || first.Query == nil || len(first.Query.Tables) != 1 {
		t.Errorf("single feedback carries SQL %q query %v, want the served query", first.SQL, first.Query)
	}
	if first.Model == "" {
		t.Errorf("single feedback carries no model name")
	}
	// The three batch events, in some order: actual 21, explicit zero, and
	// one without feedback. The zero-actual event must be distinguishable
	// from the no-feedback one ONLY via HasActual — both carry Actual == 0.
	type key struct {
		actual    float64
		hasActual bool
	}
	got := map[key]int{}
	for _, ev := range seen[1:] {
		got[key{ev.Actual, ev.HasActual}]++
	}
	want := map[key]int{
		{21, true}: 1,
		{0, true}:  1,
		{0, false}: 1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("batch feedback events = %v, want %v", got, want)
			break
		}
	}
}

func TestFeedbackHookSkipsFailedEstimates(t *testing.T) {
	var calls int
	srv := newStubServer(t, errEst{}, func(cfg *Config) {
		cfg.Feedback = func(FeedbackEvent) { calls++ }
	})
	postJSON(t, srv.Handler(), "/v1/estimate", map[string]any{"sql": stubSQL, "actual": 10})
	if calls != 0 {
		t.Errorf("feedback hook ran %d times for a failed estimate, want 0", calls)
	}
}

func TestExtraMetricsMergedIntoSnapshot(t *testing.T) {
	srv := newStubServer(t, constEst(1), func(cfg *Config) {
		cfg.ExtraMetrics = func() map[string]any {
			return map[string]any{
				"drift_alarms_qerror": uint64(3),
				"requests_total":      int64(999999), // collision: the server's value must win
			}
		}
	})
	code, m := getJSON(t, srv.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if m["drift_alarms_qerror"] != 3.0 {
		t.Errorf("drift_alarms_qerror = %v, want 3", m["drift_alarms_qerror"])
	}
	if m["requests_total"] == 999999.0 {
		t.Error("extra metrics overrode a built-in counter; built-ins must win")
	}
}

func TestStatusPages(t *testing.T) {
	srv := newStubServer(t, constEst(1), func(cfg *Config) {
		cfg.StatusPages = map[string]func() any{
			"/v1/drift": func() any { return map[string]any{"observed": 7} },
		}
	})
	h := srv.Handler()
	code, v := getJSON(t, h, "/v1/drift")
	if code != http.StatusOK || v["observed"] != 7.0 {
		t.Fatalf("GET /v1/drift = (%d, %v), want 200 with observed 7", code, v)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/drift", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/drift status %d, want 405", rec.Code)
	}
}
