package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qfe/internal/testutil"
)

// TestGracefulDrain covers the shutdown contract end to end over a real
// listener: a request in flight when drain begins runs to completion, new
// requests are refused with 503 while draining, and the listener closes
// within the drain deadline once the in-flight tail finishes.
func TestGracefulDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	est := &blockingEst{started: make(chan struct{}), release: make(chan struct{})}
	srv := newStubServer(t, est, func(c *Config) {
		c.Batcher = BatcherConfig{MaxBatch: 1}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One request gets admitted and blocks inside the estimator.
	type result struct {
		code int
		body map[string]any
		err  error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
			bytes.NewReader([]byte(`{"sql":"`+stubSQL+`"}`)))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var v map[string]any
		err = json.NewDecoder(resp.Body).Decode(&v)
		inFlight <- result{code: resp.StatusCode, body: v, err: err}
	}()
	<-est.started

	// Drain. The in-flight request is still blocked; new work is refused.
	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		bytes.NewReader([]byte(`{"sql":"`+stubSQL+`"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d, want 503", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", resp.StatusCode)
	}

	// Let the in-flight request finish shortly after Shutdown begins; the
	// listener must then close well within the deadline.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(est.release)
	}()
	const deadline = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("listener did not close within %v: %v", deadline, err)
	}
	if elapsed := time.Since(start); elapsed >= deadline {
		t.Errorf("shutdown took %v, want < %v", elapsed, deadline)
	}
	srv.Close()

	r := <-inFlight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK || r.body["estimate"] != 42.0 {
		t.Errorf("in-flight request: status %d body %v, want 200 with estimate 42", r.code, r.body)
	}

	snap := srv.Metrics().Snapshot()
	if snap["drained_total"] != int64(1) {
		t.Errorf("drained_total = %v, want 1", snap["drained_total"])
	}
	if snap["requests_total"] != int64(1) {
		t.Errorf("requests_total = %v, want 1 (the drained request was never admitted)", snap["requests_total"])
	}
}
