package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qfe/internal/sqlparse"
	"qfe/internal/testutil"
)

// stubBatchEst implements estimator.BatchEstimator and counts how often
// each path runs, so tests can see which way the batcher routed.
type stubBatchEst struct {
	batchCalls  atomic.Int64
	singleCalls atomic.Int64
}

func (s *stubBatchEst) Name() string { return "stub-batch" }

func (s *stubBatchEst) Estimate(*sqlparse.Query) (float64, error) {
	s.singleCalls.Add(1)
	return 7, nil
}

func (s *stubBatchEst) EstimateBatch(_ context.Context, qs []*sqlparse.Query) ([]float64, []error) {
	s.batchCalls.Add(1)
	ests := make([]float64, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		ests[i] = 7
	}
	return ests, errs
}

// TestFlushUsesBatchPath: a coalesced flush whose requests all target one
// BatchEstimator must go through EstimateBatch once, not per-query Estimate.
func TestFlushUsesBatchPath(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	est := &stubBatchEst{}
	b := newBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: 5 * time.Second, Workers: 2}, nil)
	defer b.Close()
	q := parseQ(t, stubSQL)

	var wg sync.WaitGroup
	results := make([]EstResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.Do(context.Background(), est, q)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil || r.Estimate != 7 {
			t.Errorf("result %d = %+v, want estimate 7", i, r)
		}
	}
	if got := est.batchCalls.Load(); got != 1 {
		t.Errorf("EstimateBatch called %d times, want 1", got)
	}
	if got := est.singleCalls.Load(); got != 0 {
		t.Errorf("per-query Estimate called %d times, want 0", got)
	}
}

// TestFlushMixedEstimatorsFallsBack: a flush holding requests for different
// estimators cannot use one batch call — each request must still get the
// answer from its own estimator.
func TestFlushMixedEstimatorsFallsBack(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	batchEst := &stubBatchEst{}
	b := newBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: 5 * time.Second, Workers: 2}, nil)
	defer b.Close()
	q := parseQ(t, stubSQL)

	var wg sync.WaitGroup
	results := make([]EstResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				results[i] = b.Do(context.Background(), batchEst, q)
			} else {
				results[i] = b.Do(context.Background(), constEst(3), q)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		want := 3.0
		if i%2 == 0 {
			want = 7.0
		}
		if r.Err != nil || r.Estimate != want {
			t.Errorf("result %d = %+v, want estimate %v", i, r, want)
		}
	}
	if got := batchEst.batchCalls.Load(); got != 0 {
		t.Errorf("EstimateBatch called %d times on a mixed flush, want 0", got)
	}
}

// TestFlushBatchSkipsDeadContexts: requests whose context died while queued
// get ctx.Err() and never reach the estimator; live neighbors still batch.
func TestFlushBatchSkipsDeadContexts(t *testing.T) {
	est := &stubBatchEst{}
	b := &batcher{cfg: BatcherConfig{}.withDefaults()}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	q := parseQ(t, stubSQL)
	reqs := []*estReq{
		{ctx: context.Background(), est: est, q: q, done: make(chan EstResult, 1)},
		{ctx: dead, est: est, q: q, done: make(chan EstResult, 1)},
		{ctx: context.Background(), est: est, q: q, done: make(chan EstResult, 1)},
	}
	if !b.flushBatched(reqs) {
		t.Fatal("flushBatched refused a uniform BatchEstimator batch")
	}
	if r := <-reqs[1].done; !errors.Is(r.Err, context.Canceled) {
		t.Errorf("dead request got %+v, want context.Canceled", r)
	}
	for _, i := range []int{0, 2} {
		if r := <-reqs[i].done; r.Err != nil || r.Estimate != 7 {
			t.Errorf("live request %d got %+v, want estimate 7", i, r)
		}
	}
	if got := est.batchCalls.Load(); got != 1 {
		t.Errorf("EstimateBatch called %d times, want 1", got)
	}
}

// TestDoBatchUsesBatchPath: client-supplied batches route through
// EstimateBatch when the estimator has one.
func TestDoBatchUsesBatchPath(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	est := &stubBatchEst{}
	b := newBatcher(BatcherConfig{MaxDelay: 0}, nil)
	defer b.Close()
	qs := make([]*sqlparse.Query, 8)
	for i := range qs {
		qs[i] = parseQ(t, stubSQL)
	}
	out := b.DoBatch(context.Background(), est, qs)
	for i, r := range out {
		if r.Err != nil || r.Estimate != 7 {
			t.Errorf("result %d = %+v, want estimate 7", i, r)
		}
	}
	if got := est.batchCalls.Load(); got != 1 {
		t.Errorf("EstimateBatch called %d times, want 1", got)
	}
}

// TestDoBatchSteadyStateAllocs pins the serve-layer overhead of the batch
// fast path: result assembly only, no per-query goroutine fan-out or
// channel traffic. The estimator side's budget is pinned in its own
// package; the stub here isolates the batcher's share.
func TestDoBatchSteadyStateAllocs(t *testing.T) {
	est := &stubBatchEst{}
	b := newBatcher(BatcherConfig{MaxDelay: 0}, nil)
	defer b.Close()
	qs := make([]*sqlparse.Query, 64)
	for i := range qs {
		qs[i] = parseQ(t, stubSQL)
	}
	ctx := context.Background()
	b.DoBatch(ctx, est, qs)
	allocs := testing.AllocsPerRun(100, func() {
		b.DoBatch(ctx, est, qs)
	})
	t.Logf("DoBatch(64) allocs/op = %v", allocs)
	// out + the stub's ests/errs slices; anything above means the fast path
	// regressed into per-query dispatch.
	if allocs > 8 {
		t.Errorf("DoBatch allocs/op = %v, want <= 8", allocs)
	}
}
