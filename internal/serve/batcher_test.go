package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qfe/internal/sqlparse"
	"qfe/internal/testutil"
)

func parseQ(t *testing.T, sql string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// batchRecorder collects onBatch calls.
type batchRecorder struct {
	mu    sync.Mutex
	sizes []int
}

func (r *batchRecorder) record(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sizes = append(r.sizes, n)
}

func (r *batchRecorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.sizes {
		n += s
	}
	return n
}

// TestBatcherCoalesces: with a long MaxDelay, a full batch must flush on
// size, not on the timer — concurrent requests share one flush.
func TestBatcherCoalesces(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	rec := &batchRecorder{}
	b := newBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: 5 * time.Second, Workers: 2}, rec.record)
	defer b.Close()
	q := parseQ(t, stubSQL)

	start := time.Now()
	var wg sync.WaitGroup
	results := make([]EstResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.Do(context.Background(), constEst(9), q)
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("4 requests with MaxBatch=4 took %v; a full batch must flush before MaxDelay", elapsed)
	}
	for i, r := range results {
		if r.Err != nil || r.Estimate != 9 {
			t.Errorf("result %d = %+v, want estimate 9", i, r)
		}
	}
	if rec.total() != 4 {
		t.Errorf("batches carried %d queries in total, want 4", rec.total())
	}
}

// TestBatcherFlushesOnDelay: a lone request must not wait for a batch to
// fill — MaxDelay bounds its extra latency.
func TestBatcherFlushesOnDelay(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	b := newBatcher(BatcherConfig{MaxBatch: 1000, MaxDelay: 5 * time.Millisecond}, nil)
	defer b.Close()
	start := time.Now()
	r := b.Do(context.Background(), constEst(3), parseQ(t, stubSQL))
	if r.Err != nil || r.Estimate != 3 {
		t.Fatalf("result = %+v, want estimate 3", r)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("lone request took %v; MaxDelay must bound the wait", elapsed)
	}
}

// TestBatcherOpportunistic: MaxDelay 0 never waits at all.
func TestBatcherOpportunistic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	b := newBatcher(BatcherConfig{MaxBatch: 16, MaxDelay: 0}, nil)
	defer b.Close()
	for i := 0; i < 5; i++ {
		if r := b.Do(context.Background(), constEst(1), parseQ(t, stubSQL)); r.Err != nil || r.Estimate != 1 {
			t.Fatalf("request %d: %+v", i, r)
		}
	}
}

// pickyEst maps specific queries to specific values, so order preservation
// is observable.
type pickyEst map[*sqlparse.Query]float64

func (p pickyEst) Name() string { return "picky" }
func (p pickyEst) Estimate(q *sqlparse.Query) (float64, error) {
	v, ok := p[q]
	if !ok {
		return 0, errors.New("unknown query")
	}
	return v, nil
}

// TestDoBatchKeepsOrder: client batches bypass coalescing but must return
// results in input order.
func TestDoBatchKeepsOrder(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	rec := &batchRecorder{}
	b := newBatcher(BatcherConfig{Workers: 3}, rec.record)
	defer b.Close()

	est := pickyEst{}
	qs := make([]*sqlparse.Query, 8)
	for i := range qs {
		qs[i] = parseQ(t, stubSQL)
		est[qs[i]] = float64(i * 10)
	}
	out := b.DoBatch(context.Background(), est, qs)
	if len(out) != len(qs) {
		t.Fatalf("got %d results, want %d", len(out), len(qs))
	}
	for i, r := range out {
		if r.Err != nil || r.Estimate != float64(i*10) {
			t.Errorf("result %d = %+v, want estimate %d", i, r, i*10)
		}
	}
	if rec.total() != 8 || len(rec.sizes) != 1 {
		t.Errorf("recorded batches %v, want one batch of 8", rec.sizes)
	}
	if out := b.DoBatch(context.Background(), est, nil); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
}

// TestBatcherCloseAnswersEverything: requests already enqueued when Close
// begins must still receive results (graceful drain), and requests after
// Close must get ErrServerClosed.
func TestBatcherCloseAnswersEverything(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	b := newBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, Queue: 64}, nil)
	q := parseQ(t, stubSQL)

	reqs := make([]*estReq, 16)
	for i := range reqs {
		reqs[i] = &estReq{ctx: context.Background(), est: constEst(5), q: q, done: make(chan EstResult, 1)}
		if err := b.submit(reqs[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	b.Close()
	for i, r := range reqs {
		select {
		case res := <-r.done:
			if res.Err != nil || res.Estimate != 5 {
				t.Errorf("drained request %d = %+v, want estimate 5", i, res)
			}
		default:
			t.Fatalf("request %d was never answered after Close", i)
		}
	}

	if r := b.Do(context.Background(), constEst(5), q); !errors.Is(r.Err, ErrServerClosed) {
		t.Errorf("post-close Do: err = %v, want ErrServerClosed", r.Err)
	}
	// Close is idempotent.
	b.Close()
}

// TestBatcherContextCancelled: a cancelled context surfaces as an error
// result, not a hang.
func TestBatcherContextCancelled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	b := newBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond}, nil)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := b.Do(ctx, constEst(5), parseQ(t, stubSQL))
	if r.Err == nil {
		t.Errorf("cancelled context produced %+v, want an error", r)
	}
}

// TestBatcherCancelUnblocksWaiter: a caller canceled while its batch is
// still collecting must return immediately with ctx.Err() instead of
// riding out MaxDelay (regression: Do used to wait on the done channel
// unconditionally).
func TestBatcherCancelUnblocksWaiter(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const maxDelay = 5 * time.Second
	b := newBatcher(BatcherConfig{MaxBatch: 16, MaxDelay: maxDelay}, nil)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := b.Do(ctx, constEst(5), parseQ(t, stubSQL))
	waited := time.Since(start)
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("canceled waiter got %+v, want context.Canceled", r)
	}
	if waited >= maxDelay {
		t.Fatalf("canceled waiter blocked %v, must unblock well before MaxDelay %v", waited, maxDelay)
	}
}
