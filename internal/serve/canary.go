package serve

import (
	"context"
	"fmt"
	"math"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/workload"
)

// The canary gate is the validation step every model must clear before (and
// while) it serves traffic: the candidate estimates a held-out labeled
// workload and its median and p95 q-errors are checked against absolute
// ceilings and — when it would replace an incumbent — against the
// incumbent's own numbers times a slack factor. This mirrors how learned
// estimators are vetted in practice: a model that trained on a skewed label
// batch looks fine structurally and only reveals itself against held-out
// truth.

// CanaryConfig parameterizes the gate.
type CanaryConfig struct {
	// Workload is the held-out labeled query set the candidate must
	// estimate. An empty workload disables the gate (every run passes and
	// says so in Reason).
	Workload workload.Set
	// MaxMedian is the absolute ceiling on the median q-error. 0 means the
	// default 10.
	MaxMedian float64
	// MaxP95 is the absolute ceiling on the p95 q-error. 0 means the
	// default 100.
	MaxP95 float64
	// Slack is how much worse than the incumbent (multiplicatively, on both
	// median and p95) a candidate may be and still pass. 0 means the
	// default 2.
	Slack float64
	// Timeout bounds one whole canary run. 0 means the default 10s.
	Timeout time.Duration
}

func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.MaxMedian <= 0 {
		c.MaxMedian = 10
	}
	if c.MaxP95 <= 0 {
		c.MaxP95 = 100
	}
	if c.Slack <= 0 {
		c.Slack = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// CanaryResult is one canary run's verdict, rendered into /v1/models.
type CanaryResult struct {
	Median     float64 `json:"median"`
	P95        float64 `json:"p95"`
	Queries    int     `json:"queries"`
	Failed     int     `json:"failed"` // estimation errors (scored as +Inf q-error)
	Pass       bool    `json:"pass"`
	Reason     string  `json:"reason,omitempty"`
	ProbedUnix int64   `json:"probedUnix"`
}

// RunCanary estimates cfg.Workload with est and scores it. incumbent, when
// non-nil, is the canary result of the model the candidate would replace;
// the candidate then additionally must stay within cfg.Slack of it. A
// context cancellation mid-run fails the canary (a model too slow for its
// canary budget is not fit to serve).
func RunCanary(ctx context.Context, est estimator.Estimator, cfg CanaryConfig, incumbent *CanaryResult) CanaryResult {
	cfg = cfg.withDefaults()
	res := CanaryResult{Queries: len(cfg.Workload), ProbedUnix: time.Now().Unix()}
	if len(cfg.Workload) == 0 {
		res.Pass = true
		res.Reason = "no canary workload configured"
		return res
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	qerrs := make([]float64, 0, len(cfg.Workload))
	for _, l := range cfg.Workload {
		if ctx.Err() != nil {
			res.Pass = false
			res.Reason = fmt.Sprintf("canary aborted after %d/%d queries: %v", len(qerrs), len(cfg.Workload), ctx.Err())
			res.Median, res.P95 = math.Inf(1), math.Inf(1)
			return res
		}
		v, err := estimator.EstimateWithContext(ctx, est, l.Query)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			res.Failed++
			qerrs = append(qerrs, math.Inf(1))
			continue
		}
		qerrs = append(qerrs, metrics.QError(float64(l.Card), v))
	}
	res.Median = metrics.Quantile(qerrs, 0.50)
	res.P95 = metrics.Quantile(qerrs, 0.95)

	switch {
	case res.Median > cfg.MaxMedian:
		res.Reason = fmt.Sprintf("median q-error %.3g exceeds ceiling %.3g", res.Median, cfg.MaxMedian)
	case res.P95 > cfg.MaxP95:
		res.Reason = fmt.Sprintf("p95 q-error %.3g exceeds ceiling %.3g", res.P95, cfg.MaxP95)
	case incumbent != nil && res.Median > incumbent.Median*cfg.Slack:
		res.Reason = fmt.Sprintf("median q-error %.3g regresses past incumbent %.3g × slack %.3g", res.Median, incumbent.Median, cfg.Slack)
	case incumbent != nil && res.P95 > incumbent.P95*cfg.Slack:
		res.Reason = fmt.Sprintf("p95 q-error %.3g regresses past incumbent %.3g × slack %.3g", res.P95, incumbent.P95, cfg.Slack)
	default:
		res.Pass = true
		res.Reason = fmt.Sprintf("median %.3g / p95 %.3g over %d queries", res.Median, res.P95, res.Queries)
	}
	return res
}
