package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// This file is the servemetrics layer: lock-free atomic counters plus
// fixed-bucket histograms, rendered at /metrics as expvar-style JSON. The
// hot path pays a handful of atomic adds per request; rendering walks the
// counters without stopping traffic.

// histogram is a fixed-bucket histogram safe for concurrent Observe. bounds
// are ascending upper bounds; an implicit +Inf bucket catches the tail.
// Buckets are cumulative-free (each count is its own bucket); renderers sum
// if they want CDFs.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records v. Non-finite observations are dropped: a NaN or a
// single ±Inf would poison sum permanently (every later finite observation
// still renders an infinite sum in /metrics).
func (h *histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// bucket is one rendered histogram bucket: the upper bound ("inf" for the
// overflow bucket) and its count.
type bucket struct {
	LE any   `json:"le"`
	N  int64 `json:"n"`
}

// snapshot renders the histogram as an ordered bucket list plus count/sum.
func (h *histogram) snapshot() map[string]any {
	buckets := make([]bucket, 0, len(h.counts))
	for i := range h.counts {
		le := any("inf")
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		buckets = append(buckets, bucket{LE: le, N: h.counts[i].Load()})
	}
	return map[string]any{
		"buckets": buckets,
		"count":   h.count.Load(),
		"sum":     math.Float64frombits(h.sum.Load()),
	}
}

// Metrics aggregates the server's counters. All fields are safe for
// concurrent use; the zero value is not usable — call newMetrics.
type Metrics struct {
	start time.Time

	requests  atomic.Int64 // HTTP requests to /v1/estimate (single or batch)
	queries   atomic.Int64 // individual queries estimated
	batches   atomic.Int64 // batches flushed through the parallel path
	batchedQs atomic.Int64 // queries carried by those batches
	shed      atomic.Int64 // requests rejected by admission control (429)
	drained   atomic.Int64 // requests rejected because the server is draining (503)
	degraded  atomic.Int64 // queries answered by a non-primary resilience stage
	estErrors atomic.Int64 // queries whose estimation failed (client-visible 4xx)
	swaps     atomic.Int64 // model registry loads/swaps

	// Estimate-cache counters (generation-scoped semantic cache, cache.go).
	cacheHits      atomic.Int64 // estimates served from the cache
	cacheMisses    atomic.Int64 // estimates computed (and possibly stored)
	cacheEvictions atomic.Int64 // entries displaced by LRU pressure
	cacheCollapsed atomic.Int64 // requests that waited on an identical in-flight compute

	// Model-lifecycle counters (canary gate, supervisor, rollback).
	canaryPass  atomic.Int64 // canary runs that admitted a model
	canaryFail  atomic.Int64 // canary runs that rejected a model
	rollbacks   atomic.Int64 // registry rollbacks to a previous generation
	quarantines atomic.Int64 // generations quarantined (publish-time or live)

	lastRollbackUnix atomic.Int64  // unix seconds of the last rollback, 0 = never
	storeGeneration  atomic.Uint64 // store generation backing the live model
	canaryMaxMedian  atomic.Uint64 // configured gate thresholds, float64 bits
	canaryMaxP95     atomic.Uint64

	ok2xx  atomic.Int64
	err4xx atomic.Int64
	err5xx atomic.Int64

	inFlight atomic.Int64

	latency *histogram // per-query estimation latency, microseconds
	qerror  *histogram // q-error of estimates with reported actuals

	// extra, when non-nil, is merged into Snapshot under the server's own
	// keys (which win on collision). Written once before traffic starts.
	extra func() map[string]any
}

func newMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		// Latency buckets span 100µs to 1s in roughly 1-2.5-5 steps; the
		// paper's featurization costs sit well under the first bucket, so
		// the low end resolves model inference, the high end deadline blowups.
		latency: newHistogram(100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000),
		// Q-error buckets follow the paper's reporting granularity.
		qerror: newHistogram(1.5, 2, 3, 5, 10, 25, 100, 1_000, 10_000),
	}
}

// observeQuery records one estimated query's latency and degradation.
func (m *Metrics) observeQuery(d time.Duration, degraded bool, err error) {
	m.queries.Add(1)
	m.latency.Observe(float64(d.Microseconds()))
	if degraded {
		m.degraded.Add(1)
	}
	if err != nil {
		m.estErrors.Add(1)
	}
}

// observeBatch records one coalesced batch of n queries.
func (m *Metrics) observeBatch(n int) {
	m.batches.Add(1)
	m.batchedQs.Add(int64(n))
}

// ObserveQError records the q-error of an estimate whose true cardinality
// the client reported (post-execution feedback).
func (m *Metrics) ObserveQError(q float64) { m.qerror.Observe(q) }

// The lifecycle observers tolerate a nil receiver so a Lifecycle can run
// before (or without) being bound to a server's metrics.

// observeCanary records one canary verdict.
func (m *Metrics) observeCanary(pass bool) {
	if m == nil {
		return
	}
	if pass {
		m.canaryPass.Add(1)
	} else {
		m.canaryFail.Add(1)
	}
}

// observeRollback records a registry rollback at time t.
func (m *Metrics) observeRollback(t time.Time) {
	if m == nil {
		return
	}
	m.rollbacks.Add(1)
	m.lastRollbackUnix.Store(t.Unix())
}

// observeQuarantine records one quarantined generation.
func (m *Metrics) observeQuarantine() {
	if m == nil {
		return
	}
	m.quarantines.Add(1)
}

// setStoreGeneration publishes the generation number backing the live model.
func (m *Metrics) setStoreGeneration(g uint64) {
	if m == nil {
		return
	}
	m.storeGeneration.Store(g)
}

// setCanaryThresholds records the configured gate so /metrics scrapes can
// correlate q-error histograms with the thresholds in force.
func (m *Metrics) setCanaryThresholds(maxMedian, maxP95 float64) {
	if m == nil {
		return
	}
	m.canaryMaxMedian.Store(math.Float64bits(maxMedian))
	m.canaryMaxP95.Store(math.Float64bits(maxP95))
}

func (m *Metrics) observeStatus(code int) {
	switch {
	case code >= 500:
		m.err5xx.Add(1)
	case code >= 400:
		m.err4xx.Add(1)
	case code >= 200 && code < 300:
		m.ok2xx.Add(1)
	}
}

// Snapshot renders every counter into a flat, JSON-marshalable map.
// encoding/json sorts map keys, so the output is deterministic.
func (m *Metrics) Snapshot() map[string]any {
	snap := map[string]any{
		"uptime_seconds":        time.Since(m.start).Seconds(),
		"requests_total":        m.requests.Load(),
		"queries_total":         m.queries.Load(),
		"batches_total":         m.batches.Load(),
		"batched_queries_total": m.batchedQs.Load(),
		"shed_total":            m.shed.Load(),
		"drained_total":         m.drained.Load(),
		"degraded_total":        m.degraded.Load(),
		"estimate_errors_total": m.estErrors.Load(),
		"model_swaps_total":     m.swaps.Load(),
		"cache_hits":            m.cacheHits.Load(),
		"cache_misses":          m.cacheMisses.Load(),
		"cache_evictions":       m.cacheEvictions.Load(),
		"cache_collapsed":       m.cacheCollapsed.Load(),
		"canary_pass_total":     m.canaryPass.Load(),
		"canary_fail_total":     m.canaryFail.Load(),
		"rollbacks_total":       m.rollbacks.Load(),
		"quarantined_total":     m.quarantines.Load(),
		"last_rollback_unix":    m.lastRollbackUnix.Load(),
		"store_generation":      m.storeGeneration.Load(),
		"canary_max_median":     math.Float64frombits(m.canaryMaxMedian.Load()),
		"canary_max_p95":        math.Float64frombits(m.canaryMaxP95.Load()),
		"responses_2xx":         m.ok2xx.Load(),
		"responses_4xx":         m.err4xx.Load(),
		"responses_5xx":         m.err5xx.Load(),
		"in_flight":             m.inFlight.Load(),
		"latency_micros":        m.latency.snapshot(),
		"qerror":                m.qerror.snapshot(),
	}
	if m.extra != nil {
		for k, v := range m.extra() {
			if _, taken := snap[k]; !taken {
				snap[k] = v
			}
		}
	}
	return snap
}

// ServeHTTP renders the snapshot as JSON, expvar-style.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.Snapshot()) //nolint:errcheck // best-effort scrape output
}
