package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
	"qfe/internal/testutil"
)

// okRes wraps a value as a clean primary-stage result.
func okRes(v float64) EstResult { return EstResult{Estimate: v, Stage: "learned"} }

func newTestCache(entries, shards int) (*estCache, *Metrics) {
	m := newMetrics()
	return newEstCache(CacheConfig{Entries: entries, Shards: shards}, m), m
}

func TestCacheDisabledByZeroConfig(t *testing.T) {
	if c := newEstCache(CacheConfig{}, newMetrics()); c != nil {
		t.Fatal("zero CacheConfig must disable the cache")
	}
	if c := newEstCache(CacheConfig{Entries: -1}, newMetrics()); c != nil {
		t.Fatal("negative Entries must disable the cache")
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	c, m := newTestCache(2, 1) // single shard: LRU order is deterministic

	calls := 0
	compute := func(v float64) func() EstResult {
		return func() EstResult { calls++; return okRes(v) }
	}
	ctx := context.Background()

	if res := c.do(ctx, "a", compute(1)); res.Estimate != 1 {
		t.Fatalf("first a: %+v", res)
	}
	if res := c.do(ctx, "a", compute(99)); res.Estimate != 1 {
		t.Fatalf("cached a: %+v, want the first computation's value", res)
	}
	c.do(ctx, "b", compute(2))
	c.do(ctx, "a", compute(99)) // refreshes a's recency
	c.do(ctx, "c", compute(3))  // capacity 2: evicts b, the LRU entry
	if res := c.do(ctx, "a", compute(99)); res.Estimate != 1 {
		t.Fatalf("a must have survived (its hit refreshed recency): %+v", res)
	}
	if res := c.do(ctx, "b", compute(4)); res.Estimate != 4 {
		t.Fatalf("b after eviction: %+v, want recomputed 4", res)
	}

	if calls != 4 {
		t.Errorf("computed %d times, want 4 (a, b, c, b-again)", calls)
	}
	if h, mi, ev := m.cacheHits.Load(), m.cacheMisses.Load(), m.cacheEvictions.Load(); h != 3 || mi != 4 || ev != 2 {
		t.Errorf("hits/misses/evictions = %d/%d/%d, want 3/4/2", h, mi, ev)
	}
	if got := c.len(); got != 2 {
		t.Errorf("cache holds %d entries, want 2", got)
	}
}

func TestCacheUncacheableResults(t *testing.T) {
	c, m := newTestCache(8, 1)
	ctx := context.Background()

	calls := 0
	for i, res := range []EstResult{
		{Err: errors.New("boom")},
		{Estimate: 7, Degraded: true, Stage: "sampling"},
	} {
		res := res
		key := fmt.Sprintf("k%d", i)
		for j := 0; j < 2; j++ {
			got := c.do(ctx, key, func() EstResult { calls++; return res })
			if got != res {
				t.Fatalf("key %s round %d: %+v, want %+v", key, j, got, res)
			}
		}
	}
	if calls != 4 {
		t.Errorf("computed %d times, want 4: errors and degraded results must never be cached", calls)
	}
	if h := m.cacheHits.Load(); h != 0 {
		t.Errorf("%d hits on uncacheable results, want 0", h)
	}
}

func TestCacheSingleflightCollapse(t *testing.T) {
	c, m := newTestCache(8, 4)
	const followers = 8

	var computes atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan EstResult, 1)
	go func() {
		leaderDone <- c.do(context.Background(), "k", func() EstResult {
			computes.Add(1)
			close(entered)
			<-release
			return okRes(42)
		})
	}()
	<-entered

	var wg sync.WaitGroup
	results := make([]EstResult, followers)
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = c.do(context.Background(), "k", func() EstResult {
				computes.Add(1)
				return okRes(-1)
			})
		}()
	}
	// Wait until every follower has joined the flight, then let it finish.
	for deadline := time.Now().Add(5 * time.Second); m.cacheCollapsed.Load() < followers; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers collapsed", m.cacheCollapsed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if res := <-leaderDone; res.Estimate != 42 {
		t.Fatalf("leader: %+v", res)
	}
	for i, res := range results {
		if res.Err != nil || res.Estimate != 42 {
			t.Fatalf("follower %d: %+v, want the leader's 42", i, res)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("%d computations for %d concurrent identical requests, want 1", n, followers+1)
	}
	if col := m.cacheCollapsed.Load(); col != followers {
		t.Errorf("cache_collapsed = %d, want %d", col, followers)
	}
}

// TestCacheFollowerCancellation: a follower whose own context dies must
// unblock immediately instead of waiting for the leader's flush.
func TestCacheFollowerCancellation(t *testing.T) {
	c, _ := newTestCache(8, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.do(context.Background(), "k", func() EstResult {
		close(entered)
		<-release
		return okRes(1)
	})
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	start := time.Now()
	res := c.do(ctx, "k", func() EstResult { return okRes(-1) })
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("canceled follower got %+v, want context.Canceled", res)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("canceled follower blocked %v", waited)
	}
}

// TestCacheLeaderCanceledFollowerRecomputes: a leader cut short by its own
// deadline must not poison live followers with its context error — they
// compute for themselves.
func TestCacheLeaderCanceledFollowerRecomputes(t *testing.T) {
	c, _ := newTestCache(8, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	go c.do(context.Background(), "k", func() EstResult {
		close(entered)
		<-release
		return EstResult{Err: context.DeadlineExceeded}
	})
	<-entered

	followerDone := make(chan EstResult, 1)
	go func() {
		followerDone <- c.do(context.Background(), "k", func() EstResult { return okRes(7) })
	}()
	// The follower is parked on the flight; release the doomed leader.
	time.Sleep(5 * time.Millisecond)
	close(release)
	res := <-followerDone
	if res.Err != nil || res.Estimate != 7 {
		t.Fatalf("follower after canceled leader: %+v, want its own 7", res)
	}
}

// ---- server-level behavior ----

// cachedServer builds a stub server with the estimate cache enabled.
func cachedServer(tb testing.TB, est estimator.Estimator, mutate func(*Config)) *Server {
	return newStubServer(tb, est, func(cfg *Config) {
		cfg.Cache = CacheConfig{Entries: 128}
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// countingEst counts calls and answers with a fixed value.
type countingEst struct {
	calls atomic.Int64
	value float64
}

func (c *countingEst) Name() string { return "counting" }
func (c *countingEst) Estimate(*sqlparse.Query) (float64, error) {
	c.calls.Add(1)
	return c.value, nil
}

func TestServerCacheHitIsBitIdentical(t *testing.T) {
	est := &countingEst{value: 1234.5678901234}
	srv := cachedServer(t, est, nil)
	h := srv.Handler()

	// Three syntactic spellings of one equivalence class.
	variants := []string{
		"SELECT count(*) FROM t WHERE a >= 1",
		"SELECT count(*) FROM t WHERE a > 0",
		"SELECT count(*) FROM t WHERE a >= 1 AND a >= 1",
	}
	var estimates []float64
	for _, sql := range variants {
		code, body := postJSON(t, h, "/v1/estimate", map[string]any{"sql": sql})
		if code != http.StatusOK {
			t.Fatalf("POST %q: %d %v", sql, code, body)
		}
		estimates = append(estimates, body["estimate"].(float64))
	}
	for i, e := range estimates {
		if e != est.value {
			t.Fatalf("variant %d estimate %v, want bit-identical %v", i, e, est.value)
		}
	}
	if n := est.calls.Load(); n != 1 {
		t.Errorf("estimator ran %d times for 3 equivalent queries, want 1", n)
	}
	m := srv.Metrics()
	if h, mi := m.cacheHits.Load(), m.cacheMisses.Load(); h != 2 || mi != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", h, mi)
	}
}

func TestServerCacheBypass(t *testing.T) {
	est := &countingEst{value: 9}
	var bypass atomic.Bool
	srv := cachedServer(t, est, func(cfg *Config) {
		cfg.CacheBypass = bypass.Load
	})
	h := srv.Handler()

	post := func() {
		if code, body := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL}); code != http.StatusOK {
			t.Fatalf("POST: %d %v", code, body)
		}
	}
	post()             // miss, cached
	post()             // hit
	bypass.Store(true) // drift alarm: every request recomputes
	post()
	post()
	if n := est.calls.Load(); n != 3 {
		t.Errorf("estimator ran %d times, want 3 (1 miss + 2 bypassed)", n)
	}
	bypass.Store(false) // alarm cleared: the cached entry serves again
	post()
	if n := est.calls.Load(); n != 3 {
		t.Errorf("estimator ran %d times after alarm cleared, want still 3", n)
	}
}

func TestServerCacheBatchPath(t *testing.T) {
	est := &countingEst{value: 5}
	srv := cachedServer(t, est, nil)
	h := srv.Handler()

	batch := map[string]any{"queries": []map[string]any{
		{"sql": "SELECT count(*) FROM t WHERE a = 1"},
		{"sql": "SELECT count(*) FROM t WHERE a = 2"},
		{"sql": "SELECT count(*) FROM t WHERE a = 1"}, // duplicate in-batch
	}}
	if code, body := postJSON(t, h, "/v1/estimate", batch); code != http.StatusOK {
		t.Fatalf("batch 1: %d %v", code, body)
	}
	first := est.calls.Load()
	if first != 3 {
		t.Fatalf("first batch ran the estimator %d times, want 3 (batch path has no in-flight collapse)", first)
	}
	// Replay: every query now hits.
	if code, body := postJSON(t, h, "/v1/estimate", batch); code != http.StatusOK {
		t.Fatalf("batch 2: %d %v", code, body)
	}
	if n := est.calls.Load(); n != first {
		t.Errorf("replayed batch ran the estimator %d more times, want 0", n-first)
	}
	m := srv.Metrics()
	if h2 := m.cacheHits.Load(); h2 != 3 {
		t.Errorf("cache_hits = %d, want 3", h2)
	}
}

// TestServerCacheSingleflightE2E: concurrent identical single requests
// cost one model inference end to end.
func TestServerCacheSingleflightE2E(t *testing.T) {
	est := &blockingEst{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := cachedServer(t, est, func(cfg *Config) {
		cfg.MaxInFlight = 32
	})
	h := srv.Handler()
	const followers = 6

	results := make(chan float64, followers+1)
	post := func() {
		code, body := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL})
		if code != http.StatusOK {
			t.Errorf("POST: %d %v", code, body)
			results <- -1
			return
		}
		results <- body["estimate"].(float64)
	}
	go post()
	<-est.started // the leader is inside the model

	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); post() }()
	}
	m := srv.Metrics()
	for deadline := time.Now().Add(5 * time.Second); m.cacheCollapsed.Load() < followers; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers collapsed onto the in-flight estimate", m.cacheCollapsed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(est.release)
	wg.Wait()
	for i := 0; i < followers+1; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("response %d = %v, want 42", i, v)
		}
	}
	select {
	case <-est.started:
		t.Fatal("model ran a second inference for collapsed identical queries")
	default:
	}
}

// ---- generation-scoped invalidation ----

// TestCachePublishInvalidates: publishing a new default model bumps the
// registry generation, so the very next request misses the cache and is
// answered by the new model — no explicit invalidation call anywhere.
func TestCachePublishInvalidates(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := NewRegistry()
	lc, err := NewLifecycle(LifecycleConfig{Registry: reg, Canary: looseCanary(canarySet(t, 20, 100))})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Registry:  reg,
		Lifecycle: lc,
		Cache:     CacheConfig{Entries: 128},
		Batcher:   BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	ctx := context.Background()

	publish := func(est estimator.Estimator) {
		t.Helper()
		if _, err := lc.Publish(ctx, PublishSpec{Name: "live", Est: est, Kind: "stub", MakeDefault: true}); err != nil {
			t.Fatal(err)
		}
	}
	estimate := func() float64 {
		t.Helper()
		code, body := postJSON(t, h, "/v1/estimate", map[string]any{"sql": stubSQL})
		if code != http.StatusOK {
			t.Fatalf("POST: %d %v", code, body)
		}
		return body["estimate"].(float64)
	}

	publish(constEst(100))
	if got := estimate(); got != 100 {
		t.Fatalf("v1 estimate = %v, want 100", got)
	}
	if got := estimate(); got != 100 {
		t.Fatalf("v1 cached estimate = %v, want 100", got)
	}

	publish(constEst(200))
	if got := estimate(); got != 200 {
		t.Fatalf("estimate after publish = %v, want the new model's 200 — the cache served a stale generation", got)
	}
	m := srv.Metrics()
	if h2, mi := m.cacheHits.Load(), m.cacheMisses.Load(); h2 != 1 || mi != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2 (publish must force a miss)", h2, mi)
	}
}

// TestCacheRollbackInvalidates: a rollback re-registers the restored
// snapshot under a fresh generation, so cached entries from the rolled-back
// model stop matching.
func TestCacheRollbackInvalidates(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db, canaryWS, good, _ := lifecycleEnv(t)
	lc, reg := newLifecycle(t, t.TempDir(), looseCanary(canaryWS), db)
	srv, err := New(Config{
		Registry:  reg,
		Lifecycle: lc,
		Cache:     CacheConfig{Entries: 128},
		Batcher:   BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	ctx := context.Background()

	spec := PublishSpec{
		Name: "live", Est: good, Kind: "local",
		Snapshot: snapshotBytes(t, good), MakeDefault: true,
	}
	if _, err := lc.Publish(ctx, spec); err != nil {
		t.Fatal(err)
	}
	p2, err := lc.Publish(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	probe := canaryWS[0].Query.String()
	estimate := func() float64 {
		t.Helper()
		code, body := postJSON(t, h, "/v1/estimate", map[string]any{"sql": probe})
		if code != http.StatusOK {
			t.Fatalf("POST: %d %v", code, body)
		}
		return body["estimate"].(float64)
	}
	before := estimate()
	if again := estimate(); again != before {
		t.Fatalf("cached estimate %v differs from first answer %v", again, before)
	}
	m := srv.Metrics()
	if h2, mi := m.cacheHits.Load(), m.cacheMisses.Load(); h2 != 1 || mi != 1 {
		t.Fatalf("hits/misses before rollback = %d/%d, want 1/1", h2, mi)
	}

	if _, err := lc.Rollback(ctx, "cache invalidation test"); err != nil {
		t.Fatal(err)
	}
	_, info, err := reg.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation == p2.Info.Generation {
		t.Fatal("rollback kept the registry generation; cached entries would survive")
	}

	// Same model weights restored from the snapshot: the answer is the
	// same number, but it must be recomputed, not served from cache.
	after := estimate()
	if after != before {
		t.Fatalf("restored model answers %v, want %v (same snapshot)", after, before)
	}
	if h2, mi := m.cacheHits.Load(), m.cacheMisses.Load(); h2 != 1 || mi != 2 {
		t.Errorf("hits/misses after rollback = %d/%d, want 1/2 (rollback must force a miss)", h2, mi)
	}
}
