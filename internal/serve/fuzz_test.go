package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
)

// FuzzEstimateHandler feeds arbitrary bodies to POST /v1/estimate. The
// contract under fuzzing: malformed SQL or JSON is always a client error
// (4xx) — never a 5xx, never a panic. The SQL seeds mirror the sqlparse
// fuzz corpus (internal/sqlparse/fuzz_test.go) so everything the parser's
// fuzzer has learned to probe also hits the HTTP surface, wrapped in the
// request shapes the handler accepts.
//
// Explore with `go test -fuzz=FuzzEstimateHandler ./internal/serve`.
func FuzzEstimateHandler(f *testing.F) {
	sqlSeeds := []string{
		"SELECT count(*) FROM t",
		"SELECT count(*) FROM t WHERE a = 1;",
		"SELECT count(*) FROM t WHERE a >= -5 AND b <> 3 OR c < 100",
		"SELECT count(*) FROM forest WHERE (A1 = 1 OR A1 = 2) AND A2 <= 9",
		"SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 0",
		"SELECT count(*) FROM t WHERE s = 'it''s' AND n LIKE 'ab%'",
		"SELECT count(*) FROM t WHERE a = 1 GROUP BY b, c",
		"select COUNT ( * ) from T where 5 < x",
		"SELECT count(*) FROM t WHERE",
		"SELECT count(*) FROM t WHERE a = ",
		"SELECT count(*) FROM t WHERE a = 'unterminated",
		"SELECT count(*) FROM t WHERE a ! b",
		"((((((((",
		"",
		"\x00\xff\xfe",
		"SELECT count(*) FROM t WHERE " + strings.Repeat("(", 10000) + "a = 1" + strings.Repeat(")", 10000),
		// Fingerprint equivalence-class probes: reordering, duplication,
		// strict/closed comparison pairs, and literals that try to forge the
		// canonical form's separators.
		"SELECT count(*) FROM t WHERE b = 1 AND a > 5",
		"SELECT count(*) FROM t WHERE a >= 6 AND b = 1",
		"SELECT count(*) FROM t WHERE a = 1 OR a = 1 OR b = 2",
		"SELECT count(*) FROM t WHERE a = 1 AND a = 1",
		"SELECT count(*) FROM t WHERE a = 9223372036854775807",
		"SELECT count(*) FROM t WHERE a > 9223372036854775807",
		"SELECT count(*) FROM t WHERE s = 'x\x01B\x00=\x00\"y\"'",
	}
	for _, s := range sqlSeeds {
		// Each parser seed in both request shapes the handler accepts.
		single, _ := json.Marshal(map[string]any{"sql": s})
		f.Add(string(single))
		batch, _ := json.Marshal(map[string]any{"queries": []map[string]any{{"sql": s}, {"sql": s, "actual": 3.5}}})
		f.Add(string(batch))
		// And raw, as a malformed JSON body.
		f.Add(s)
	}
	// JSON-shape seeds: unknown fields, wrong types, contradictory shapes,
	// hostile numbers.
	for _, s := range []string{
		`{}`,
		`{"sql":""}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","queries":[{"sql":"x"}]}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","bogus":true}`,
		`{"sql":123}`,
		`{"queries":"not an array"}`,
		`{"queries":[]}`,
		`{"queries":[{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","actual":-1}]}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","timeoutMs":-5}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","timeoutMs":99999999999}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","model":"ghost"}`,
		`{"sql":"SELECT count(*) FROM nosuchtable WHERE a = 1"}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 'str'"}`,
		`[1,2,3]`,
		`null`,
		"{\"sql\":\"\x00\"}",
	} {
		f.Add(s)
	}

	db, _ := testEnv(f)
	reg := NewRegistry()
	if _, err := reg.Register("indep", &estimator.Independence{DB: db}, ModelInfo{Kind: "baseline"}); err != nil {
		f.Fatal(err)
	}
	// The fuzzed server runs with the estimate cache on, so every accepted
	// query also exercises fingerprinting and cache insertion end to end.
	srv, err := New(Config{Registry: reg, DB: db, Batcher: BatcherConfig{MaxBatch: 4}, Cache: CacheConfig{Entries: 256}})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		if rec.Code >= 500 {
			t.Fatalf("body %q produced status %d:\n%s", body, rec.Code, rec.Body.String())
		}

		// The cache-key contract, on every SQL string the fuzzer reaches the
		// handler with: raw bodies and the sql fields of JSON bodies.
		fingerprintInvariants(t, body)
		var shape struct {
			SQL     string `json:"sql"`
			Queries []struct {
				SQL string `json:"sql"`
			} `json:"queries"`
		}
		if json.Unmarshal([]byte(body), &shape) == nil {
			fingerprintInvariants(t, shape.SQL)
			for _, item := range shape.Queries {
				fingerprintInvariants(t, item.SQL)
			}
		}
	})
}

// fingerprintInvariants checks core.Fingerprint's cache-key contract on any
// string the parser accepts: no panics, Clone-stable, non-mutating, and no
// collision between inequivalent predicate sets — a perturbed literal may
// only keep the fingerprint when the perturbed query is semantically
// identical (which grid evaluation then has to confirm).
func fingerprintInvariants(t *testing.T, sql string) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return
	}
	fp := core.Fingerprint(q) // must not panic on anything parseable
	before := q.String()
	if got := core.Fingerprint(q.Clone()); got != fp {
		t.Fatalf("fingerprint not Clone-stable for %q", sql)
	}
	if q.String() != before {
		t.Fatalf("Fingerprint mutated the query: %q -> %q", before, q.String())
	}

	mut := q.Clone()
	p := firstNumericPred(mut.Where)
	if p == nil || p.Val == math.MaxInt64 {
		return
	}
	p.Val++
	if core.Fingerprint(mut) == fp && !exprsEquivalent(q.Where, mut.Where) {
		t.Fatalf("inequivalent queries share a fingerprint:\n  %s\n  %s", q, mut)
	}
}

// firstNumericPred returns the first numeric simple predicate in e, nil if
// none (string/LIKE predicates cannot be perturbed by ±1).
func firstNumericPred(e sqlparse.Expr) *sqlparse.Pred {
	switch n := e.(type) {
	case *sqlparse.Pred:
		if n.Str == nil && !n.Like {
			return n
		}
	case *sqlparse.And:
		for _, k := range n.Kids {
			if p := firstNumericPred(k); p != nil {
				return p
			}
		}
	case *sqlparse.Or:
		for _, k := range n.Kids {
			if p := firstNumericPred(k); p != nil {
				return p
			}
		}
	}
	return nil
}

// exprsEquivalent tests a and b over a grid of assignments built from every
// literal's neighborhood. It can only miss inequivalence (sampling), never
// report it falsely, so a t.Fatal off its false return is always a real
// collision bug. Expressions with string predicates are vacuously true
// (the perturbation never touches them in a way the grid could decide).
func exprsEquivalent(a, b sqlparse.Expr) bool {
	attrs := map[string]map[int64]bool{}
	if !collectNumericDomain(a, attrs) || !collectNumericDomain(b, attrs) {
		return true
	}
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	if len(names) > 4 {
		return true // grid too large to be worth the fuzz cycle
	}
	values := make([][]int64, len(names))
	total := 1
	for i, name := range names {
		for v := range attrs[name] {
			values[i] = append(values[i], v)
		}
		total *= len(values[i])
		if total > 4096 {
			return true
		}
	}
	assign := map[string]int64{}
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(names) {
			return evalExpr(a, assign) == evalExpr(b, assign)
		}
		for _, v := range values[i] {
			assign[names[i]] = v
			if !walk(i + 1) {
				return false
			}
		}
		return true
	}
	return walk(0)
}

// collectNumericDomain gathers each attribute's literal neighborhood
// {v-1, v, v+1}; false means e contains a string predicate and the grid
// check must be skipped.
func collectNumericDomain(e sqlparse.Expr, attrs map[string]map[int64]bool) bool {
	switch n := e.(type) {
	case *sqlparse.Pred:
		if n.Str != nil || n.Like {
			return false
		}
		if attrs[n.Attr] == nil {
			attrs[n.Attr] = map[int64]bool{}
		}
		for _, v := range []int64{n.Val - 1, n.Val, n.Val + 1} {
			attrs[n.Attr][v] = true
		}
	case *sqlparse.And:
		for _, k := range n.Kids {
			if !collectNumericDomain(k, attrs) {
				return false
			}
		}
	case *sqlparse.Or:
		for _, k := range n.Kids {
			if !collectNumericDomain(k, attrs) {
				return false
			}
		}
	}
	return true
}

// evalExpr evaluates a predicate tree under a total numeric assignment.
func evalExpr(e sqlparse.Expr, assign map[string]int64) bool {
	switch n := e.(type) {
	case *sqlparse.Pred:
		v := assign[n.Attr]
		switch n.Op {
		case sqlparse.OpEq:
			return v == n.Val
		case sqlparse.OpNe:
			return v != n.Val
		case sqlparse.OpLt:
			return v < n.Val
		case sqlparse.OpLe:
			return v <= n.Val
		case sqlparse.OpGt:
			return v > n.Val
		case sqlparse.OpGe:
			return v >= n.Val
		}
	case *sqlparse.And:
		for _, k := range n.Kids {
			if !evalExpr(k, assign) {
				return false
			}
		}
		return true
	case *sqlparse.Or:
		for _, k := range n.Kids {
			if evalExpr(k, assign) {
				return true
			}
		}
		return false
	}
	return true
}
