package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qfe/internal/estimator"
)

// FuzzEstimateHandler feeds arbitrary bodies to POST /v1/estimate. The
// contract under fuzzing: malformed SQL or JSON is always a client error
// (4xx) — never a 5xx, never a panic. The SQL seeds mirror the sqlparse
// fuzz corpus (internal/sqlparse/fuzz_test.go) so everything the parser's
// fuzzer has learned to probe also hits the HTTP surface, wrapped in the
// request shapes the handler accepts.
//
// Explore with `go test -fuzz=FuzzEstimateHandler ./internal/serve`.
func FuzzEstimateHandler(f *testing.F) {
	sqlSeeds := []string{
		"SELECT count(*) FROM t",
		"SELECT count(*) FROM t WHERE a = 1;",
		"SELECT count(*) FROM t WHERE a >= -5 AND b <> 3 OR c < 100",
		"SELECT count(*) FROM forest WHERE (A1 = 1 OR A1 = 2) AND A2 <= 9",
		"SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 0",
		"SELECT count(*) FROM t WHERE s = 'it''s' AND n LIKE 'ab%'",
		"SELECT count(*) FROM t WHERE a = 1 GROUP BY b, c",
		"select COUNT ( * ) from T where 5 < x",
		"SELECT count(*) FROM t WHERE",
		"SELECT count(*) FROM t WHERE a = ",
		"SELECT count(*) FROM t WHERE a = 'unterminated",
		"SELECT count(*) FROM t WHERE a ! b",
		"((((((((",
		"",
		"\x00\xff\xfe",
		"SELECT count(*) FROM t WHERE " + strings.Repeat("(", 10000) + "a = 1" + strings.Repeat(")", 10000),
	}
	for _, s := range sqlSeeds {
		// Each parser seed in both request shapes the handler accepts.
		single, _ := json.Marshal(map[string]any{"sql": s})
		f.Add(string(single))
		batch, _ := json.Marshal(map[string]any{"queries": []map[string]any{{"sql": s}, {"sql": s, "actual": 3.5}}})
		f.Add(string(batch))
		// And raw, as a malformed JSON body.
		f.Add(s)
	}
	// JSON-shape seeds: unknown fields, wrong types, contradictory shapes,
	// hostile numbers.
	for _, s := range []string{
		`{}`,
		`{"sql":""}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","queries":[{"sql":"x"}]}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","bogus":true}`,
		`{"sql":123}`,
		`{"queries":"not an array"}`,
		`{"queries":[]}`,
		`{"queries":[{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","actual":-1}]}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","timeoutMs":-5}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","timeoutMs":99999999999}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 1","model":"ghost"}`,
		`{"sql":"SELECT count(*) FROM nosuchtable WHERE a = 1"}`,
		`{"sql":"SELECT count(*) FROM forest WHERE A1 = 'str'"}`,
		`[1,2,3]`,
		`null`,
		"{\"sql\":\"\x00\"}",
	} {
		f.Add(s)
	}

	db, _ := testEnv(f)
	reg := NewRegistry()
	if _, err := reg.Register("indep", &estimator.Independence{DB: db}, ModelInfo{Kind: "baseline"}); err != nil {
		f.Fatal(err)
	}
	srv, err := New(Config{Registry: reg, DB: db, Batcher: BatcherConfig{MaxBatch: 4}})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		if rec.Code >= 500 {
			t.Fatalf("body %q produced status %d:\n%s", body, rec.Code, rec.Body.String())
		}
	})
}
