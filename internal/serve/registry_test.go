package serve

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
)

func TestRegistryDefaultAndResolve(t *testing.T) {
	r := NewRegistry()
	if _, _, err := r.Resolve(""); err == nil {
		t.Error("empty registry resolved a default")
	}

	if _, err := r.Register("", constEst(1), ModelInfo{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.Register("x", nil, ModelInfo{}); err == nil {
		t.Error("nil estimator accepted")
	}

	if _, err := r.Register("b", constEst(2), ModelInfo{Kind: "stub"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("a", constEst(1), ModelInfo{Kind: "stub"}); err != nil {
		t.Fatal(err)
	}

	// The first registration is the default, under "", "default", and List.
	for _, name := range []string{"", "default", "b"} {
		est, info, err := r.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		if est.(constEst) != 2 || info.Name != "b" {
			t.Errorf("Resolve(%q) = %v/%v, want model b", name, est, info.Name)
		}
	}
	if _, _, err := r.Resolve("nope"); err == nil {
		t.Error("unknown model resolved")
	}

	models, def := r.List()
	if def != "b" || len(models) != 2 || models[0].Name != "a" || models[1].Name != "b" {
		t.Errorf("List = %v default %q, want [a b] / b", models, def)
	}

	if err := r.SetDefault("nope"); err == nil {
		t.Error("SetDefault accepted an unknown model")
	}
	if err := r.SetDefault("a"); err != nil {
		t.Fatal(err)
	}
	if est, _, _ := r.Resolve(""); est.(constEst) != 1 {
		t.Errorf("after SetDefault(a), default resolves to %v", est)
	}
}

func TestRegistryReplaceBumpsGeneration(t *testing.T) {
	r := NewRegistry()
	i1, err := r.Register("m", constEst(1), ModelInfo{})
	if err != nil {
		t.Fatal(err)
	}
	i2, err := r.Register("m", constEst(2), ModelInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if i2.Generation <= i1.Generation {
		t.Errorf("generations %d then %d; replacement must advance", i1.Generation, i2.Generation)
	}
	est, info, err := r.Resolve("m")
	if err != nil {
		t.Fatal(err)
	}
	if est.(constEst) != 2 || info.Generation != i2.Generation {
		t.Errorf("resolved %v gen %d, want the replacement", est, info.Generation)
	}
	if models, _ := r.List(); len(models) != 1 {
		t.Errorf("replacement duplicated the entry: %v", models)
	}
}

// wrapEst proves registry.Wrap intercepted the registration.
type wrapEst struct{ inner estimator.Estimator }

func (w wrapEst) Name() string { return "wrapped(" + w.inner.Name() + ")" }
func (w wrapEst) Estimate(q *sqlparse.Query) (float64, error) {
	v, err := w.inner.Estimate(q)
	return v * 2, err
}

func TestRegistryWrap(t *testing.T) {
	r := NewRegistry()
	r.Wrap = func(e estimator.Estimator) estimator.Estimator { return wrapEst{inner: e} }
	info, err := r.Register("m", constEst(21), ModelInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Estimator != "wrapped(const)" {
		t.Errorf("info.Estimator = %q, want the wrapper's name", info.Estimator)
	}
	est, _, err := r.Resolve("m")
	if err != nil {
		t.Fatal(err)
	}
	v, err := est.Estimate(nil)
	if err != nil || v != 42 {
		t.Errorf("wrapped estimate = %v, %v; want 42", v, err)
	}
}

// TestRegistryConcurrentSwap hammers Resolve/List from readers while a
// writer keeps replacing the entry; run with -race. Readers must always see
// a fully-formed entry — one of the registered values, never nil, never a
// partial snapshot.
func TestRegistryConcurrentSwap(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("m", constEst(0), ModelInfo{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				est, info, err := r.Resolve("")
				if err != nil || est == nil || info.Name != "m" {
					t.Errorf("Resolve during swap: est=%v info=%v err=%v", est, info, err)
					return
				}
				if models, def := r.List(); def != "m" || len(models) != 1 {
					t.Errorf("List during swap: %v / %q", models, def)
					return
				}
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		if _, err := r.Register("m", constEst(i), ModelInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if est, _, _ := r.Resolve("m"); est.(constEst) != 200 {
		t.Errorf("final entry = %v, want the last write", est)
	}
}

func TestRegistryLoadFile(t *testing.T) {
	r := NewRegistry()
	if _, err := r.LoadFile("m", "/no/such/file.json", nil, false); err == nil {
		t.Error("missing file accepted")
	}
	junk := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(junk, []byte("definitely not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadFile("m", junk, nil, false); err == nil {
		t.Error("junk file accepted")
	}
	if models, _ := r.List(); len(models) != 0 {
		t.Errorf("failed loads left entries behind: %v", models)
	}

	// A real snapshot loads, registers, and can be made the default.
	db, set := testEnv(t)
	loc := trainLocal(t, db, set[:200], 8)
	path := filepath.Join(t.TempDir(), "m.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := r.LoadFile("real", path, db, true)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != estimator.KindLocal || info.Source != path || info.Models == 0 {
		t.Errorf("info = %+v, want kind local, the file path, and a model count", info)
	}
	if _, def := r.List(); def != "real" {
		t.Errorf("default = %q, want real (makeDefault was set)", def)
	}
	if _, _, err := r.Resolve(""); err != nil {
		t.Errorf("default resolve after LoadFile: %v", err)
	}
}
