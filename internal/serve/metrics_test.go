package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(10, 100)
	for _, v := range []float64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped

	snap := h.snapshot()
	buckets := snap["buckets"].([]bucket)
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3 (two bounds + inf)", len(buckets))
	}
	// Bounds are inclusive upper bounds: 5 and 10 land in le=10; 11 and 100
	// in le=100; 1000 overflows.
	wantCounts := []int64{2, 2, 1}
	for i, b := range buckets {
		if b.N != wantCounts[i] {
			t.Errorf("bucket %d (le=%v): n=%d, want %d", i, b.LE, b.N, wantCounts[i])
		}
	}
	if buckets[2].LE != "inf" {
		t.Errorf("overflow bucket le = %v, want \"inf\"", buckets[2].LE)
	}
	if snap["count"] != int64(5) {
		t.Errorf("count = %v, want 5 (NaN dropped)", snap["count"])
	}
	if snap["sum"] != float64(5+10+11+100+1000) {
		t.Errorf("sum = %v, want 1126", snap["sum"])
	}
}

// TestHistogramRejectsNonFinite: ±Inf must be dropped like NaN — a single
// infinite observation would otherwise poison the sum forever (regression:
// Observe only filtered NaN).
func TestHistogramRejectsNonFinite(t *testing.T) {
	h := newHistogram(10, 100)
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(math.NaN())
	h.Observe(1)

	snap := h.snapshot()
	if snap["count"] != int64(1) {
		t.Errorf("count = %v, want 1 (non-finite observations dropped)", snap["count"])
	}
	sum := snap["sum"].(float64)
	if sum != 1 || math.IsInf(sum, 0) || math.IsNaN(sum) {
		t.Errorf("sum = %v, want finite 1", sum)
	}
}

// TestHistogramConcurrent validates the CAS-accumulated sum under
// contention (run with -race).
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(1, 2, 3)
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	snap := h.snapshot()
	if snap["count"] != int64(goroutines*each) {
		t.Errorf("count = %v, want %d", snap["count"], goroutines*each)
	}
	if snap["sum"] != float64(goroutines*each) {
		t.Errorf("sum = %v, want %d (no lost CAS updates)", snap["sum"], goroutines*each)
	}
}

func TestMetricsSnapshotAndServeHTTP(t *testing.T) {
	m := newMetrics()
	m.observeQuery(250*time.Microsecond, true, nil)
	m.observeQuery(time.Millisecond, false, errTest)
	m.observeBatch(2)
	m.ObserveQError(3.5)
	m.observeStatus(200)
	m.observeStatus(404)
	m.observeStatus(500)

	snap := m.Snapshot()
	checks := map[string]int64{
		"queries_total":         2,
		"degraded_total":        1,
		"estimate_errors_total": 1,
		"batches_total":         1,
		"batched_queries_total": 2,
		"responses_2xx":         1,
		"responses_4xx":         1,
		"responses_5xx":         1,
	}
	for key, want := range checks {
		if snap[key] != want {
			t.Errorf("%s = %v, want %d", key, snap[key], want)
		}
	}

	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var rendered map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rendered); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	for key := range snap {
		if _, ok := rendered[key]; !ok {
			t.Errorf("rendered metrics missing %q", key)
		}
	}
	lat := rendered["latency_micros"].(map[string]any)
	if lat["count"] != 2.0 {
		t.Errorf("rendered latency count = %v, want 2", lat["count"])
	}
}

// errTest is a fixed error for metrics accounting.
var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test failure" }

func TestLimiter(t *testing.T) {
	l := newLimiter(2)
	if l.capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", l.capacity())
	}
	if !l.tryAcquire() || !l.tryAcquire() {
		t.Fatal("acquiring up to capacity must succeed")
	}
	if l.tryAcquire() {
		t.Fatal("over-capacity acquire succeeded")
	}
	if l.inFlight() != 2 {
		t.Errorf("inFlight = %d, want 2", l.inFlight())
	}
	l.release()
	if !l.tryAcquire() {
		t.Error("acquire after release failed")
	}
	// A zero/negative bound still admits one request at a time.
	if newLimiter(0).capacity() != 1 {
		t.Error("limiter with bound 0 must clamp to 1")
	}
}

func TestLifecycleMetrics(t *testing.T) {
	m := newMetrics()
	m.observeCanary(true)
	m.observeCanary(true)
	m.observeCanary(false)
	at := time.Unix(1_700_000_000, 0)
	m.observeRollback(at)
	m.observeQuarantine()
	m.setStoreGeneration(7)
	m.setCanaryThresholds(10, 100)

	snap := m.Snapshot()
	want := map[string]any{
		"canary_pass_total":  int64(2),
		"canary_fail_total":  int64(1),
		"rollbacks_total":    int64(1),
		"quarantined_total":  int64(1),
		"last_rollback_unix": at.Unix(),
		"store_generation":   uint64(7),
		"canary_max_median":  10.0,
		"canary_max_p95":     100.0,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %v (%T), want %v (%T)", k, snap[k], snap[k], v, v)
		}
	}

	// The lifecycle observers must tolerate running before a server binds
	// them (nil receiver).
	var unbound *Metrics
	unbound.observeCanary(true)
	unbound.observeRollback(at)
	unbound.observeQuarantine()
	unbound.setStoreGeneration(1)
	unbound.setCanaryThresholds(1, 1)
}
