package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/resilience/faultinject"
	"qfe/internal/sqlparse"
	"qfe/internal/store"
	"qfe/internal/table"
	"qfe/internal/testutil"
	"qfe/internal/workload"
)

// ---- fixtures ----

// canarySet builds a synthetic canary workload whose queries all have true
// cardinality card, so constEst canaries have exact, predictable q-errors.
func canarySet(tb testing.TB, n int, card int64) workload.Set {
	tb.Helper()
	q, err := sqlparse.Parse(stubSQL)
	if err != nil {
		tb.Fatal(err)
	}
	set := make(workload.Set, n)
	for i := range set {
		set[i] = workload.Labeled{Query: q, Card: card}
	}
	return set
}

// lifecycleEnv builds a labeled canary split plus good and bad trained
// models: the bad one is trained on labels inflated a millionfold, so it
// loads cleanly and estimates terribly — the failure mode the canary gate
// exists to catch.
func lifecycleEnv(tb testing.TB) (*table.DB, workload.Set, *estimator.Local, *estimator.Local) {
	tb.Helper()
	db, set := testEnv(tb)
	good := trainLocal(tb, db, set[:400], 16)
	poisoned := make(workload.Set, 400)
	for i, l := range set[:400] {
		poisoned[i] = workload.Labeled{Query: l.Query, Card: l.Card*1_000_000 + 1_000_000_000}
	}
	bad := trainLocal(tb, db, poisoned, 16)
	return db, set[500:700], good, bad
}

func snapshotBytes(tb testing.TB, loc *estimator.Local) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func newLifecycle(tb testing.TB, dir string, canary CanaryConfig, db *table.DB) (*Lifecycle, *Registry) {
	tb.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	reg := NewRegistry()
	lc, err := NewLifecycle(LifecycleConfig{Registry: reg, Store: st, DB: db, Canary: canary})
	if err != nil {
		tb.Fatal(err)
	}
	return lc, reg
}

// looseCanary passes any roughly-sane trained model but fails the poisoned
// one by orders of magnitude.
func looseCanary(ws workload.Set) CanaryConfig {
	return CanaryConfig{Workload: ws, MaxMedian: 1_000, MaxP95: 100_000, Slack: 1e9}
}

// ---- canary gate ----

func TestRunCanaryVerdicts(t *testing.T) {
	ws := canarySet(t, 20, 100)
	cfg := CanaryConfig{Workload: ws, MaxMedian: 10, MaxP95: 100}

	if res := RunCanary(context.Background(), constEst(100), cfg, nil); !res.Pass || res.Median != 1 {
		t.Errorf("exact model: %+v, want pass with median 1", res)
	}
	if res := RunCanary(context.Background(), constEst(100_000), cfg, nil); res.Pass || res.Median != 1000 {
		t.Errorf("1000x-off model: %+v, want fail with median 1000", res)
	}
	if res := RunCanary(context.Background(), errEst{}, cfg, nil); res.Pass || res.Failed != len(ws) || !math.IsInf(res.Median, 1) {
		t.Errorf("erroring model: %+v, want all-failed with Inf median", res)
	}
	if res := RunCanary(context.Background(), constEst(1), CanaryConfig{}, nil); !res.Pass {
		t.Errorf("empty workload: %+v, want pass", res)
	}

	// Incumbent regression: q-error 5 clears the absolute ceiling of 10 but
	// regresses past an incumbent at 2 with slack 2.
	incumbent := &CanaryResult{Median: 2, P95: 2}
	if res := RunCanary(context.Background(), constEst(500), cfg, incumbent); res.Pass {
		t.Errorf("regressing model: %+v, want fail vs incumbent 2 with slack 2", res)
	}
	if res := RunCanary(context.Background(), constEst(250), cfg, &CanaryResult{Median: 2, P95: 3}); !res.Pass {
		t.Errorf("within-slack model: %+v, want pass (q-error 2.5 <= incumbent 2 x slack 2)", res)
	}
}

func TestRunCanaryTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCanary(ctx, constEst(1), CanaryConfig{Workload: canarySet(t, 5, 1)}, nil)
	if res.Pass || !math.IsInf(res.Median, 1) {
		t.Fatalf("cancelled canary: %+v, want fail with Inf median", res)
	}
}

// ---- lifecycle publish / recover / rollback ----

func TestLifecyclePublishGate(t *testing.T) {
	db, canaryWS, good, bad := lifecycleEnv(t)
	dir := t.TempDir()
	lc, reg := newLifecycle(t, dir, looseCanary(canaryWS), db)

	// The bad model is rejected: nothing registered, nothing persisted.
	_, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: bad, Kind: "local", Source: "test",
		Snapshot: snapshotBytes(t, bad), MakeDefault: true,
	})
	if !errors.Is(err, ErrCanaryRejected) {
		t.Fatalf("bad model publish: err = %v, want ErrCanaryRejected", err)
	}
	if _, _, err := reg.Resolve("live"); err == nil {
		t.Fatal("rejected model reached the registry")
	}
	if _, ok := lc.Store().Latest(); ok {
		t.Fatal("rejected model reached the store")
	}

	// The good model is admitted, persisted, and becomes the default.
	pub, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: good, Kind: "local", Source: "test",
		Snapshot: snapshotBytes(t, good), MakeDefault: true,
	})
	if err != nil {
		t.Fatalf("good model publish: %v", err)
	}
	if !pub.Canary.Pass || pub.Info.StoreGeneration == 0 {
		t.Fatalf("publication = %+v, want passing canary and a store generation", pub)
	}
	if g, ok := lc.Store().Latest(); !ok || g.Number != pub.Info.StoreGeneration {
		t.Fatalf("store latest = %+v/%v, want generation %d", g, ok, pub.Info.StoreGeneration)
	}
	if _, info, err := reg.Resolve(""); err != nil || info.Name != "live" || info.Canary == nil {
		t.Fatalf("default = %+v (err %v), want live with canary info", info, err)
	}
}

func TestLifecycleRecoverAcrossRestart(t *testing.T) {
	db, canaryWS, good, _ := lifecycleEnv(t)
	dir := t.TempDir()
	lc, _ := newLifecycle(t, dir, looseCanary(canaryWS), db)
	pub, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: good, Kind: "local",
		Snapshot: snapshotBytes(t, good), MakeDefault: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store handle, fresh registry, recover from disk.
	lc2, reg2 := newLifecycle(t, dir, looseCanary(canaryWS), db)
	rec, ok, err := lc2.Recover(context.Background(), "live", true)
	if err != nil || !ok {
		t.Fatalf("recover: ok=%v err=%v", ok, err)
	}
	if rec.Info.StoreGeneration != pub.Info.StoreGeneration {
		t.Fatalf("recovered generation %d, want %d", rec.Info.StoreGeneration, pub.Info.StoreGeneration)
	}
	est, _, err := reg2.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	q := canaryWS[0].Query
	want, err := good.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(q)
	if err != nil || got != want {
		t.Fatalf("recovered estimate = %v (err %v), want %v", got, err, want)
	}

	// Empty store: recover reports no candidate without erroring.
	lc3, _ := newLifecycle(t, t.TempDir(), looseCanary(canaryWS), db)
	if _, ok, err := lc3.Recover(context.Background(), "live", true); ok || err != nil {
		t.Fatalf("empty-store recover: ok=%v err=%v, want false/nil", ok, err)
	}
}

func TestLifecycleRollback(t *testing.T) {
	db, canaryWS, good, _ := lifecycleEnv(t)
	dir := t.TempDir()
	lc, reg := newLifecycle(t, dir, looseCanary(canaryWS), db)

	publish := func() Publication {
		t.Helper()
		pub, err := lc.Publish(context.Background(), PublishSpec{
			Name: "live", Est: good, Kind: "local",
			Snapshot: snapshotBytes(t, good), MakeDefault: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pub
	}
	p1, p2 := publish(), publish()
	if p2.Info.StoreGeneration <= p1.Info.StoreGeneration {
		t.Fatalf("generations %d then %d, want ascending", p1.Info.StoreGeneration, p2.Info.StoreGeneration)
	}

	rb, err := lc.Rollback(context.Background(), "test")
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if rb.Info.StoreGeneration != p1.Info.StoreGeneration {
		t.Fatalf("rolled back to generation %d, want %d", rb.Info.StoreGeneration, p1.Info.StoreGeneration)
	}
	if _, info, err := reg.Resolve(""); err != nil || info.StoreGeneration != p1.Info.StoreGeneration {
		t.Fatalf("default after rollback = %+v (err %v)", info, err)
	}
	// The quarantined generation is gone from the store's valid set.
	if g, ok := lc.Store().Latest(); !ok || g.Number != p1.Info.StoreGeneration {
		t.Fatalf("store latest after rollback = %+v/%v", g, ok)
	}

	// With only one generation left, a further rollback has no target and
	// must not dislodge the survivor... but it quarantines the live
	// generation first, so the error names the real condition.
	if _, err := lc.Rollback(context.Background(), "again"); !errors.Is(err, ErrNoRollbackTarget) {
		t.Fatalf("rollback with no target: %v, want ErrNoRollbackTarget", err)
	}
}

// TestCanceledContextDoesNotQuarantine: a canceled context aborts the
// canary for reasons that say nothing about the model, so Recover and
// Rollback must surface the cancellation instead of quarantining every
// valid generation on disk (a client disconnect or shutdown race would
// otherwise irreversibly burn all rollback state).
func TestCanceledContextDoesNotQuarantine(t *testing.T) {
	db, canaryWS, good, _ := lifecycleEnv(t)
	dir := t.TempDir()
	lc, _ := newLifecycle(t, dir, looseCanary(canaryWS), db)
	for i := 0; i < 2; i++ {
		if _, err := lc.Publish(context.Background(), PublishSpec{
			Name: "live", Est: good, Kind: "local",
			Snapshot: snapshotBytes(t, good), MakeDefault: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	// Rollback with a canceled context: live generation stays in place.
	if _, err := lc.Rollback(canceled, "canceled"); err == nil || errors.Is(err, ErrNoRollbackTarget) {
		t.Fatalf("canceled rollback: err = %v, want a cancellation error", err)
	}
	if got := len(lc.Store().Generations()); got != 2 {
		t.Fatalf("%d generations survive a canceled rollback, want 2", got)
	}

	// Probe with a canceled context: no verdict recorded, no rollback.
	if out, err := lc.Probe(canceled); err == nil || out.RolledBack {
		t.Fatalf("canceled probe = %+v, err %v, want error without rollback", out, err)
	}
	if got := len(lc.Store().Generations()); got != 2 {
		t.Fatalf("%d generations survive a canceled probe, want 2", got)
	}

	// Recover on a fresh handle with a canceled context: the walk aborts
	// before judging anything.
	lc2, _ := newLifecycle(t, dir, looseCanary(canaryWS), db)
	if _, ok, err := lc2.Recover(canceled, "live", true); err == nil || ok {
		t.Fatalf("canceled recover: ok=%v err=%v, want error", ok, err)
	}
	if got := len(lc2.Store().Generations()); got != 2 {
		t.Fatalf("%d generations survive a canceled recover, want 2", got)
	}
}

// quarantineFailFS delegates to the real filesystem but fails renames into
// quarantine — the step the promote walk depends on for progress.
type quarantineFailFS struct {
	store.FS
}

func (f quarantineFailFS) Rename(oldPath, newPath string) error {
	if strings.HasPrefix(filepath.Base(newPath), "quarantined-") {
		return errors.New("injected: quarantine rename failed")
	}
	return f.FS.Rename(oldPath, newPath)
}

// TestQuarantineFailureAbortsWalk: when the store cannot quarantine a
// canary-failing generation, Recover must return the error instead of
// re-selecting the same generation forever under the lifecycle mutex
// (which would wedge publishes, probes, and the rollback endpoint).
func TestQuarantineFailureAbortsWalk(t *testing.T) {
	db, canaryWS, _, bad := lifecycleEnv(t)
	dir := t.TempDir()

	// Admit the bad model through an empty canary (always passes) so the
	// store holds a generation the real canary will reject at recover time.
	lc, _ := newLifecycle(t, dir, CanaryConfig{}, db)
	if _, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: bad, Kind: "local",
		Snapshot: snapshotBytes(t, bad), MakeDefault: true,
	}); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir, store.Options{FS: quarantineFailFS{store.OSFS()}})
	if err != nil {
		t.Fatal(err)
	}
	lc2, err := NewLifecycle(LifecycleConfig{Registry: NewRegistry(), Store: st, DB: db, Canary: looseCanary(canaryWS)})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		ok  bool
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, ok, err := lc2.Recover(context.Background(), "live", true)
		done <- result{ok, err}
	}()
	select {
	case r := <-done:
		if r.ok || r.err == nil || errors.Is(r.err, ErrNoRollbackTarget) {
			t.Fatalf("recover with failing quarantine: ok=%v err=%v, want the quarantine error", r.ok, r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recover spun forever on an unquarantinable generation")
	}
	// The generation was not silently dropped: it is still on disk, so an
	// operator (or a later walk, once the I/O error clears) can deal with it.
	if got := len(st.Generations()); got != 1 {
		t.Fatalf("%d generations after aborted walk, want 1", got)
	}
}

// ---- supervisor ----

// TestSupervisorAutoRollback is the live-degradation scenario: a model that
// passed its admission canary starts failing in production (injected via
// faultinject), the supervisor's probe catches it, quarantines its
// generation, and promotes the previous good generation — all without an
// operator.
func TestSupervisorAutoRollback(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db, canaryWS, good, _ := lifecycleEnv(t)
	dir := t.TempDir()
	lc, reg := newLifecycle(t, dir, looseCanary(canaryWS), db)

	// Generation 1: a plain good model.
	p1, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: good, Kind: "local",
		Snapshot: snapshotBytes(t, good), MakeDefault: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Generation 2: the same model behind a (currently clean) fault
	// injector. Its snapshot is the clean model, so rolling back to it later
	// would also work.
	inj := faultinject.New(good, faultinject.Config{Seed: 1})
	p2, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: inj, Kind: "local",
		Snapshot: snapshotBytes(t, good), MakeDefault: true,
	})
	if err != nil {
		t.Fatalf("clean injector failed its admission canary: %v", err)
	}

	sv := StartSupervisor(SupervisorConfig{
		Lifecycle: lc,
		Interval:  time.Hour, // probes only via ProbeNow: deterministic
		Logf:      t.Logf,
	})
	defer sv.Close()

	// Healthy probe: no rollback, canary status refreshed in the registry.
	out, err := sv.ProbeNow()
	if err != nil || !out.Probed || !out.Result.Pass || out.RolledBack {
		t.Fatalf("healthy probe: %+v err=%v", out, err)
	}

	// The live model degrades: every call now errors.
	inj.SetConfig(faultinject.Config{Seed: 2, ErrorRate: 1})
	out, err = sv.ProbeNow()
	if err != nil {
		t.Fatalf("degraded probe: %v", err)
	}
	if !out.Probed || out.Result.Pass || !out.RolledBack {
		t.Fatalf("degraded probe outcome: %+v, want fail + rollback", out)
	}
	if out.RolledBackTo.Info.StoreGeneration != p1.Info.StoreGeneration {
		t.Fatalf("rolled back to generation %d, want %d", out.RolledBackTo.Info.StoreGeneration, p1.Info.StoreGeneration)
	}
	if _, info, err := reg.Resolve(""); err != nil || info.StoreGeneration != p1.Info.StoreGeneration {
		t.Fatalf("default after auto-rollback = %+v (err %v)", info, err)
	}
	if g, ok := lc.Store().Latest(); !ok || g.Number == p2.Info.StoreGeneration {
		t.Fatalf("degraded generation %d still newest in store (latest %+v ok=%v)", p2.Info.StoreGeneration, g, ok)
	}

	// A post-rollback probe of the restored model passes again.
	if out, err := sv.ProbeNow(); err != nil || !out.Result.Pass || out.RolledBack {
		t.Fatalf("post-rollback probe: %+v err=%v", out, err)
	}
}

func TestSupervisorCloseIdempotent(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	lc, err := NewLifecycle(LifecycleConfig{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	sv := StartSupervisor(SupervisorConfig{Lifecycle: lc, Interval: time.Millisecond, Logf: t.Logf})
	time.Sleep(5 * time.Millisecond) // let a few (no-op) scheduled probes fire
	sv.Close()
	sv.Close()
	if out, err := sv.ProbeNow(); err != nil || out.Probed {
		t.Fatalf("probe after close: %+v err=%v, want zero outcome", out, err)
	}
}

// ---- end-to-end over a real listener ----

// TestCanaryGateEndToEnd is the acceptance scenario: over a real listener,
// a canary-failing snapshot POSTed to /v1/models/load is refused with 409
// and never serves; a good snapshot is admitted; after the live model
// degrades, the supervisor rolls back automatically and the server keeps
// answering estimates throughout. Lifecycle metrics land in /metrics.
func TestCanaryGateEndToEnd(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db, canaryWS, good, bad := lifecycleEnv(t)
	root := t.TempDir()
	lc, reg := newLifecycle(t, filepath.Join(root, "store"), looseCanary(canaryWS), db)

	// Write both snapshots under the model root.
	for name, loc := range map[string]*estimator.Local{"good.json": good, "bad.json": bad} {
		if err := os.WriteFile(filepath.Join(root, name), snapshotBytes(t, loc), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := New(Config{
		Registry:  reg,
		DB:        db,
		Batcher:   BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
		ModelRoot: root,
		Lifecycle: lc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, v
	}

	// Bootstrap: the good snapshot is admitted over HTTP.
	code, resp := post("/v1/models/load", map[string]any{"name": "live", "path": "good.json", "default": true})
	if code != http.StatusOK {
		t.Fatalf("good load: status %d body %v", code, resp)
	}

	// The bad snapshot is refused with 409 and the canary verdict; the
	// default and the store are untouched.
	genBefore, _ := lc.Store().Latest()
	code, resp = post("/v1/models/load", map[string]any{"name": "live", "path": "bad.json", "default": true})
	if code != http.StatusConflict {
		t.Fatalf("bad load: status %d body %v, want 409", code, resp)
	}
	if resp["canary"] == nil {
		t.Fatalf("409 body %v carries no canary verdict", resp)
	}
	if g, ok := lc.Store().Latest(); !ok || g.Number != genBefore.Number {
		t.Fatalf("store advanced to %+v/%v after a rejected load", g, ok)
	}

	// Path escapes are refused before any IO.
	for _, p := range []string{"../outside.json", "/etc/passwd"} {
		if code, resp := post("/v1/models/load", map[string]any{"name": "x", "path": p}); code != http.StatusBadRequest {
			t.Fatalf("escape %q: status %d body %v, want 400", p, code, resp)
		}
	}

	// Estimates flow, served by the admitted model.
	probe := canaryWS[0].Query.String()
	code, resp = post("/v1/estimate", map[string]any{"sql": probe})
	if code != http.StatusOK {
		t.Fatalf("estimate: status %d body %v", code, resp)
	}

	// Publish a second, degradable generation directly through the
	// lifecycle (the registry is shared with the listener), then degrade it
	// and let the supervisor roll back.
	inj := faultinject.New(good, faultinject.Config{Seed: 1})
	p2, err := lc.Publish(context.Background(), PublishSpec{
		Name: "live", Est: inj, Kind: "local",
		Snapshot: snapshotBytes(t, good), MakeDefault: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := StartSupervisor(SupervisorConfig{Lifecycle: lc, Interval: time.Hour, Logf: t.Logf})
	defer sv.Close()
	inj.SetConfig(faultinject.Config{Seed: 2, ErrorRate: 1})
	out, err := sv.ProbeNow()
	if err != nil || !out.RolledBack {
		t.Fatalf("supervised rollback: %+v err=%v", out, err)
	}

	// The server keeps answering after the rollback.
	code, resp = post("/v1/estimate", map[string]any{"sql": probe})
	if code != http.StatusOK {
		t.Fatalf("estimate after rollback: status %d body %v", code, resp)
	}

	// /v1/models shows the rolled-back generation with its canary verdict.
	getResp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models map[string]any
	if err := json.NewDecoder(getResp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	live := models["models"].([]any)[0].(map[string]any)
	if live["storeGeneration"] == float64(p2.Info.StoreGeneration) {
		t.Fatalf("live model still on degraded generation: %v", live)
	}
	if live["canary"] == nil {
		t.Fatalf("live model carries no canary status: %v", live)
	}

	// /metrics carries the lifecycle trail.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(mResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mResp.Body.Close()
	if snap["canary_fail_total"].(float64) < 2 { // bad load + degraded probe
		t.Errorf("canary_fail_total = %v, want >= 2", snap["canary_fail_total"])
	}
	if snap["rollbacks_total"].(float64) != 1 {
		t.Errorf("rollbacks_total = %v, want 1", snap["rollbacks_total"])
	}
	if snap["quarantined_total"].(float64) < 1 {
		t.Errorf("quarantined_total = %v, want >= 1", snap["quarantined_total"])
	}
	if snap["last_rollback_unix"].(float64) == 0 {
		t.Errorf("last_rollback_unix = 0 after a rollback")
	}
	if snap["store_generation"].(float64) == 0 {
		t.Errorf("store_generation = 0 with a store-backed live model")
	}
}

// TestRollbackEndpoint drives POST /v1/models/rollback over the handler.
func TestRollbackEndpoint(t *testing.T) {
	db, canaryWS, good, _ := lifecycleEnv(t)
	lc, reg := newLifecycle(t, t.TempDir(), looseCanary(canaryWS), db)
	publish := func() Publication {
		t.Helper()
		pub, err := lc.Publish(context.Background(), PublishSpec{
			Name: "live", Est: good, Kind: "local",
			Snapshot: snapshotBytes(t, good), MakeDefault: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pub
	}
	p1 := publish()
	publish()

	srv, err := New(Config{Registry: reg, DB: db, Lifecycle: lc, Batcher: BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	if code, _ := getJSON(t, h, "/v1/models/rollback"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", code)
	}
	code, resp := postJSON(t, h, "/v1/models/rollback", map[string]any{"reason": "operator test"})
	if code != http.StatusOK {
		t.Fatalf("rollback: status %d body %v", code, resp)
	}
	info := resp["info"].(map[string]any)
	if info["storeGeneration"] != float64(p1.Info.StoreGeneration) {
		t.Errorf("rolled back to %v, want generation %d", info["storeGeneration"], p1.Info.StoreGeneration)
	}
	// Out of targets now (only one valid generation remains, and rolling
	// back quarantines it): 409.
	if code, resp := rawPost(t, h, "/v1/models/rollback", nil); code != http.StatusConflict {
		t.Errorf("rollback without target: status %d body %v, want 409", code, resp)
	}

	// Without a lifecycle the endpoint is 501.
	plain := newStubServer(t, constEst(1), nil)
	if code, _ := rawPost(t, plain.Handler(), "/v1/models/rollback", nil); code != http.StatusNotImplemented {
		t.Errorf("no lifecycle: status %d, want 501", code)
	}
}

// TestModelRootConfinement covers resolveModelPath directly.
func TestModelRootConfinement(t *testing.T) {
	srv := newStubServer(t, constEst(1), func(c *Config) { c.ModelRoot = "/models" })
	cases := []struct {
		path string
		ok   bool
	}{
		{"a.json", true},
		{"sub/dir/a.json", true},
		{"/models/a.json", true},
		{"./a.json", true},
		{"sub/../a.json", true},
		{"../a.json", false},
		{"sub/../../a.json", false},
		{"/etc/passwd", false},
		{"/modelsX/a.json", false},
		{"..", false},
	}
	for _, c := range cases {
		_, err := srv.resolveModelPath(c.path)
		if (err == nil) != c.ok {
			t.Errorf("resolveModelPath(%q): err = %v, want ok=%v", c.path, err, c.ok)
		}
	}
	// Unrestricted when no root is configured.
	open := newStubServer(t, constEst(1), nil)
	if _, err := open.resolveModelPath("/anywhere/at/all"); err != nil {
		t.Errorf("no root: %v", err)
	}
}

// TestModelRootSymlinkEscape: a symlink planted inside the model root must
// not defeat confinement — containment is checked on the symlink-resolved
// path, not just the lexical one.
func TestModelRootSymlinkEscape(t *testing.T) {
	outside := t.TempDir()
	secret := filepath.Join(outside, "secret.json")
	if err := os.WriteFile(secret, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := os.Symlink(secret, filepath.Join(root, "link.json")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := os.Symlink(outside, filepath.Join(root, "dir")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "ok.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := newStubServer(t, constEst(1), func(c *Config) { c.ModelRoot = root })
	for _, p := range []string{"link.json", "dir/secret.json"} {
		if got, err := srv.resolveModelPath(p); err == nil {
			t.Errorf("resolveModelPath(%q) = %q, want refusal (symlink escapes the root)", p, got)
		}
	}
	// Real files inside the root still resolve, as do not-yet-existing ones
	// (the subsequent read fails on its own).
	if _, err := srv.resolveModelPath("ok.json"); err != nil {
		t.Errorf("resolveModelPath(ok.json): %v", err)
	}
	if _, err := srv.resolveModelPath("missing.json"); err != nil {
		t.Errorf("resolveModelPath(missing.json): %v", err)
	}
}
