module qfe

go 1.22
