// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5), one target per artifact, plus the design ablations from
// DESIGN.md and microbenchmarks for the featurization hot path.
//
// Artifact benchmarks execute a whole experiment per iteration (training
// included), so the interesting output is the report they b.Log, not ns/op;
// run them with -benchtime=1x. The scale profile follows QFE_SCALE
// ("smoke", "default", "full").
package qfe_test

import (
	"sync"
	"testing"

	"qfe/internal/bench"
	"qfe/internal/core"
	"qfe/internal/sqlparse"
	"qfe/internal/workload"
)

var (
	envOnce   sync.Once
	sharedEnv *bench.Env
)

// experimentEnv returns the process-wide environment so consecutive
// benchmarks share datasets and labeled workloads.
func experimentEnv() *bench.Env {
	envOnce.Do(func() {
		sharedEnv = bench.NewEnv(bench.CurrentScale())
	})
	return sharedEnv
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	env := experimentEnv()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(env)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkFigure1_QFTxModel regenerates Figure 1 (q-error boxplots for
// every QFT × model combination on forest).
func BenchmarkFigure1_QFTxModel(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure2_ErrorByAttrs regenerates Figure 2 (GB errors per QFT by
// number of attributes).
func BenchmarkFigure2_ErrorByAttrs(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3_ErrorByPreds regenerates Figure 3 (GB errors per QFT by
// number of predicates).
func BenchmarkFigure3_ErrorByPreds(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4_VsEstablished regenerates Figure 4 (best QFT × model vs
// Postgres-style, sampling, and MSCN baselines).
func BenchmarkFigure4_VsEstablished(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5_QueryDrift regenerates Figure 5 (query drift).
func BenchmarkFigure5_QueryDrift(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable1_JOBLightLocal regenerates Table 1 (JOB-light, local
// NN/GB × simple/range/conjunctive).
func BenchmarkTable1_JOBLightLocal(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkTable2_LocalVsGlobal regenerates Table 2 (MSCN variants vs local
// NN on JOB-light).
func BenchmarkTable2_LocalVsGlobal(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTable3_AttrSel regenerates Table 3 (per-attribute selectivity
// estimate on/off).
func BenchmarkTable3_AttrSel(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTable4_EndToEnd regenerates Table 4 (end-to-end run times under
// three cardinality sources).
func BenchmarkTable4_EndToEnd(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkTable5_VectorLength regenerates Table 5 (accuracy vs feature
// vector length).
func BenchmarkTable5_VectorLength(b *testing.B) { runExperiment(b, "tab5") }

// BenchmarkTable6_Convergence regenerates Table 6 (training convergence).
func BenchmarkTable6_Convergence(b *testing.B) { runExperiment(b, "tab6") }

// BenchmarkTable7_QFTTime regenerates Table 7's report (featurization time
// and estimator memory). The per-QFT ns/op microbenchmarks below measure
// the same hot path with the standard benchmark machinery.
func BenchmarkTable7_QFTTime(b *testing.B) { runExperiment(b, "tab7") }

// Ablation benchmarks (DESIGN.md section 4).

// BenchmarkAblationGBSplit compares histogram vs exact split search.
func BenchmarkAblationGBSplit(b *testing.B) { runExperiment(b, "abl1") }

// BenchmarkAblationHalfEntries compares ½ entries vs binarized partitions.
func BenchmarkAblationHalfEntries(b *testing.B) { runExperiment(b, "abl2") }

// BenchmarkAblationLDEMerge compares max-merge vs sum-clamp merge in LDE.
func BenchmarkAblationLDEMerge(b *testing.B) { runExperiment(b, "abl3") }

// BenchmarkAblationLabelTransform compares log2 vs raw labels.
func BenchmarkAblationLabelTransform(b *testing.B) { runExperiment(b, "abl4") }

// Extension benchmarks — the paper-sketched ideas made runnable (see
// DESIGN.md's X1..X7 rows and EXPERIMENTS.md).

// BenchmarkExtensionModelZoo runs ext1 (Section 2.2 simpler-models gap).
func BenchmarkExtensionModelZoo(b *testing.B) { runExperiment(b, "ext1") }

// BenchmarkExtensionAdaptiveEntries runs ext2 (attribute-specific n).
func BenchmarkExtensionAdaptiveEntries(b *testing.B) { runExperiment(b, "ext2") }

// BenchmarkExtensionPartitioning runs ext3 (histogram partitioning).
func BenchmarkExtensionPartitioning(b *testing.B) { runExperiment(b, "ext3") }

// BenchmarkExtensionDataDrift runs ext4 (drift reconstruction).
func BenchmarkExtensionDataDrift(b *testing.B) { runExperiment(b, "ext4") }

// BenchmarkExtensionIEP runs ext5 (inclusion-exclusion vs LDE).
func BenchmarkExtensionIEP(b *testing.B) { runExperiment(b, "ext5") }

// BenchmarkExtensionGroupBy runs ext6 (filtered GROUP BY estimation).
func BenchmarkExtensionGroupBy(b *testing.B) { runExperiment(b, "ext6") }

// BenchmarkExtensionWeightedSel runs ext7 (frequency-weighted attrSel).
func BenchmarkExtensionWeightedSel(b *testing.B) { runExperiment(b, "ext7") }

// BenchmarkExtensionPruning runs ext8 (Section 2.1.2 sub-schema pruning).
func BenchmarkExtensionPruning(b *testing.B) { runExperiment(b, "ext8") }

// Featurization microbenchmarks — Table 7's µs-per-query numbers measured
// with testing.B directly. Each benchmark featurizes the appropriate test
// workload round-robin.

func benchmarkFeaturize(b *testing.B, qft string) {
	b.Helper()
	env := experimentEnv()
	forest, err := env.Forest()
	if err != nil {
		b.Fatal(err)
	}
	var set workload.Set
	if qft == "complex" {
		_, set, err = env.MixedWorkload()
	} else {
		_, set, err = env.ConjWorkload()
	}
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{MaxEntriesPerAttr: 64, AttrSel: true}
	meta := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)
	f, err := core.New(qft, meta, opts)
	if err != nil {
		b.Fatal(err)
	}
	exprs := make([]sqlparse.Expr, len(set))
	for i, l := range set {
		exprs[i] = l.Query.Where
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Featurize(exprs[i%len(exprs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturizeSimple measures Singular Predicate Encoding.
func BenchmarkFeaturizeSimple(b *testing.B) { benchmarkFeaturize(b, "simple") }

// BenchmarkFeaturizeRange measures Range Predicate Encoding.
func BenchmarkFeaturizeRange(b *testing.B) { benchmarkFeaturize(b, "range") }

// BenchmarkFeaturizeConjunctive measures Universal Conjunction Encoding.
func BenchmarkFeaturizeConjunctive(b *testing.B) { benchmarkFeaturize(b, "conjunctive") }

// BenchmarkFeaturizeComplex measures Limited Disjunction Encoding on the
// mixed workload.
func BenchmarkFeaturizeComplex(b *testing.B) { benchmarkFeaturize(b, "complex") }
