// Concept drift: what happens when test queries look nothing like training
// queries (the paper's Section 5.5.1 experiment).
//
// Models train only on low-dimensional queries (at most two distinct
// attributes) and are tested on high-dimensional ones (three or more).
// Feature vectors and result-size distributions both shift. The paper's
// finding — gradient boosting generalizes across the drift while the neural
// network overfits, and the partition-based encodings drift most gracefully
// — reproduces here.
//
// Run with: go run ./examples/concept_drift
package main

import (
	"fmt"
	"log"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func main() {
	forest, err := dataset.Forest(dataset.ForestConfig{
		Rows: 10_000, QuantAttrs: 8, BinaryAttrs: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(forest)

	set, err := workload.Conjunctive(forest, workload.ConjConfig{
		Count: 4_000, MaxAttrs: 8, MaxNotEquals: 3, Seed: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := set.SplitByAttrs(2)
	fmt.Printf("training: %d queries with <= 2 attributes (mean cardinality %.0f)\n",
		len(train), train.MeanCard())
	fmt.Printf("testing:  %d queries with >= 3 attributes (mean cardinality %.0f)\n\n",
		len(test), test.MeanCard())
	fmt.Println("the drift: test queries are more selective AND activate feature-vector")
	fmt.Println("regions the model never saw — both input and output distributions move.")
	fmt.Println()

	gbCfg := gb.DefaultConfig()
	nnCfg := nn.DefaultConfig()
	nnCfg.Epochs = 25

	for _, m := range []struct {
		name    string
		factory estimator.RegressorFactory
	}{
		{"GB", estimator.NewGBFactory(gbCfg)},
		{"NN", estimator.NewNNFactory(nnCfg)},
	} {
		for _, qft := range []string{"simple", "conjunctive"} {
			est, err := estimator.NewLocal(db, estimator.LocalConfig{
				QFT:          qft,
				Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
				NewRegressor: m.factory,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := est.Train(train); err != nil {
				log.Fatal(err)
			}
			// In-distribution reference (a held-out slice of the training
			// regime) versus the drifted test queries.
			ref, err := estimator.Evaluate(est, train[:min(300, len(train))])
			if err != nil {
				log.Fatal(err)
			}
			drift, err := estimator.Evaluate(est, test)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s + %-12s train-regime median %6.2f  |  drifted: %v\n",
				m.name, qft, metrics.Summarize(ref).Median, metrics.Summarize(drift))
		}
	}
	fmt.Println("\n(watch the gap between train-regime and drifted errors: it stays small")
	fmt.Println(" for GB and explodes for NN + simple — Figure 5 of the paper)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
