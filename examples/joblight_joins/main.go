// JOB-light joins: local per-sub-schema estimators over a star schema,
// evaluated on a JOB-light-style suite of join queries — the setting of the
// paper's Tables 1 and 2.
//
// The example builds the IMDb-shaped star schema (title plus five satellite
// tables joined on movie_id), trains one model per connected sub-schema,
// and routes every test query to its sub-schema's model.
//
// Run with: go run ./examples/joblight_joins
package main

import (
	"fmt"
	"log"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/workload"
)

func main() {
	db, err := dataset.IMDB(dataset.IMDBConfig{Titles: 3_000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	schema := dataset.IMDBSchema()
	fmt.Printf("star schema: %v\n", schema.Tables)
	fmt.Printf("connected sub-schemas: %d (one local model each)\n\n",
		len(schema.ConnectedSubSchemas(0)))

	// Stratified training: a batch of labeled queries per sub-schema, so
	// every sub-schema gets a model.
	train, err := workload.StratifiedJoinTraining(db, schema, 40, 0, 5, 11)
	if err != nil {
		log.Fatal(err)
	}
	test, err := workload.JOBLight(db, schema, workload.DefaultJOBLightConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training queries: %d   JOB-light-style test queries: %d\n", len(train), len(test))
	fmt.Printf("example test query:\n  %s\n\n", test[0].Query)

	for _, qft := range []string{"simple", "range", "conjunctive"} {
		est, err := estimator.NewLocal(db, estimator.LocalConfig{
			QFT:          qft,
			Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
			NewRegressor: estimator.NewGBFactory(gb.DefaultConfig()),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := est.Train(train); err != nil {
			log.Fatal(err)
		}
		qerrs, err := estimator.Evaluate(est, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GB + %-12s %v  (%d models)\n", qft+":", metrics.Summarize(qerrs), est.NumModels())
	}

	// Show the routing: which sub-schema one query lands on.
	q := test[0].Query
	fmt.Printf("\nquery over tables %v routes to local model %q\n",
		q.Tables, catalog.SubSchemaKey(q.Tables))
	fmt.Println("\n(JOB-light has at most one range per attribute, so range encoding is")
	fmt.Println(" already lossless here — the paper's Table 1 observation)")
}
