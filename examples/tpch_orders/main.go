// TPC-H Orders: the paper's own running example (the mixed query below
// Definition 3.3), end to end — string predicates bound against the
// dictionary, date predicates over a gappy yyyymmdd encoding handled by
// equi-depth partitions, and Limited Disjunction Encoding feeding a
// gradient-boosting estimator.
//
// The example estimates the paper's exact query:
//
//	SELECT count(*) FROM Orders WHERE
//	  (o_orderdate >= '1994-01' AND o_orderdate <= '1994-12'
//	   AND o_orderdate <> '1994-07-04'
//	   OR
//	   o_orderdate >= '1996-01' AND o_orderdate <= '1996-12'
//	   AND o_orderdate <> '1996-07-04') AND
//	  (o_orderstatus = 'P' OR o_orderstatus = 'F') AND
//	  (o_totalprice > 1000 AND o_totalprice < 2000);
//
// Run with: go run ./examples/tpch_orders
package main

import (
	"fmt"
	"log"
	"math"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/histogram"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func main() {
	orders, err := dataset.TPCHOrders(dataset.DefaultTPCHConfig())
	if err != nil {
		log.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(orders)
	fmt.Printf("orders: %d rows, columns %v\n\n", orders.NumRows(), orders.ColumnNames())

	// The paper's example query, dates written as the integer yyyymmdd
	// encoding (dataset.EncodeDate) and statuses as string literals that
	// exec.Bind resolves against the dictionary.
	src := fmt.Sprintf(`SELECT count(*) FROM orders WHERE
		(o_orderdate >= %d AND o_orderdate <= %d AND o_orderdate <> %d
		 OR o_orderdate >= %d AND o_orderdate <= %d AND o_orderdate <> %d) AND
		(o_orderstatus = 'P' OR o_orderstatus = 'F') AND
		(o_totalprice > 1000 AND o_totalprice < 2000)`,
		dataset.EncodeDate(1994, 1, 1), dataset.EncodeDate(1994, 12, 31), dataset.EncodeDate(1994, 7, 4),
		dataset.EncodeDate(1996, 1, 1), dataset.EncodeDate(1996, 12, 31), dataset.EncodeDate(1996, 7, 4))
	q, err := sqlparse.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Bind(q, db); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the paper's Definition 3.3 example query (bound):")
	fmt.Printf("  %s\n\n", q)

	// A mixed training workload over the same table.
	train, err := workload.Mixed(orders, workload.MixedConfig{
		ConjConfig:  workload.ConjConfig{Count: 3_000, MaxAttrs: 3, MaxNotEquals: 3, Seed: 1},
		MaxBranches: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Equi-depth partitions absorb the yyyymmdd encoding's impossible gaps
	// (month 13..99 never occurs): boundaries land where the data lives.
	meta, err := core.NewTableMetaPartitioned(orders, 32, func(col *table.Column, n int) ([]int64, error) {
		return histogram.EquiDepth(col.Vals, n)
	})
	if err != nil {
		log.Fatal(err)
	}
	date, _ := meta.Attr("o_orderdate")
	fmt.Printf("o_orderdate: domain [%d, %d], %d equi-depth partitions\n",
		date.Min, date.Max, date.NEntries)
	lo, hi := date.BucketRange(0)
	fmt.Printf("  first partition covers [%d, %d] — boundaries follow the data, not the gaps\n\n", lo, hi)

	// Train GB + Limited Disjunction Encoding. The estimator.Local API
	// builds uniform partitions; here we drive core directly to use the
	// equi-depth meta (the lower-level, fully pluggable path).
	opts := core.Options{MaxEntriesPerAttr: 32, AttrSel: true}
	f := core.NewComplex(meta, opts)
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, l := range train {
		vec, err := f.Featurize(l.Query.Where)
		if err != nil {
			log.Fatal(err)
		}
		X[i] = vec
		y[i] = math.Log2(float64(l.Card) + 1)
	}
	model, err := gb.Train(X, y, gb.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	vec, err := f.Featurize(q.Where)
	if err != nil {
		log.Fatal(err)
	}
	est := math.Exp2(model.Predict(vec)) - 1
	if est < 1 {
		est = 1
	}
	truth, err := exec.Count(db, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate: %.0f   truth: %d   q-error: %.2f\n\n",
		est, truth, metrics.QError(float64(truth), est))

	// For contrast: the Postgres-style independence baseline on the same
	// query (it handles per-attribute ORs, but not the date-status
	// correlation baked into the generator).
	ind := &estimator.Independence{DB: db}
	pg, err := ind.Estimate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("independence baseline: %.0f (q-error %.2f)\n",
		pg, metrics.QError(float64(truth), pg))
}
