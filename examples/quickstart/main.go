// Quickstart: featurize queries with Universal Conjunction Encoding, train
// a gradient-boosting estimator on labeled queries, and estimate new ones.
//
// This is the smallest end-to-end tour of the library:
//
//  1. build (or load) a table,
//  2. generate a labeled training workload with the exact executor,
//  3. train a local estimator = QFT + regressor,
//  4. estimate, and compare against the truth with the q-error.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func main() {
	// 1. A covertype-shaped table: 12 numeric attributes A1..A12 plus four
	// binary indicators, with strong cross-attribute correlation.
	forest, err := dataset.Forest(dataset.ForestConfig{
		Rows: 10_000, QuantAttrs: 8, BinaryAttrs: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(forest)

	// 2. A labeled conjunctive workload: random multi-predicate queries
	// counted exactly by the executor, empty results discarded.
	set, err := workload.Conjunctive(forest, workload.ConjConfig{
		Count: 2_500, MaxAttrs: 6, MaxNotEquals: 3, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := set.Split(2_000)

	// 3. A local estimator: Universal Conjunction Encoding (Algorithm 1 of
	// the paper) feeding a gradient-boosting regressor.
	est, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
		NewRegressor: estimator.NewGBFactory(gb.DefaultConfig()),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := est.Train(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained GB + conjunctive on %d queries (%.1f kB model)\n\n",
		len(train), float64(est.MemoryBytes())/1024)

	// 4a. Estimate a hand-written query.
	q, err := sqlparse.Parse(
		"SELECT count(*) FROM forest WHERE A1 >= 2600 AND A1 <= 3100 AND A3 > 20 AND A3 <> 25")
	if err != nil {
		log.Fatal(err)
	}
	got, err := est.Estimate(q)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := exec.Count(db, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:    %s\n", q)
	fmt.Printf("estimate: %.0f   truth: %d   q-error: %.2f\n\n",
		got, truth, metrics.QError(float64(truth), got))

	// 4b. Evaluate on the held-out workload, the paper's summary style.
	sum, err := estimator.Summarize(est, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out q-errors over %d queries:\n  %v\n", len(test), sum)
}
