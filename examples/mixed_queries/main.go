// Mixed queries: featurizing AND/OR predicate combinations with Limited
// Disjunction Encoding (Algorithm 2 of the paper) — the first QFT designed
// for queries with disjunctions.
//
// The example walks through the paper's own Section 3.3 featurization
// example entry by entry, then trains GB + complex on a mixed workload and
// compares it against the Postgres-style independence baseline.
//
// Run with: go run ./examples/mixed_queries
package main

import (
	"fmt"
	"log"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func main() {
	// --- Part 1: the paper's worked example (Section 3.3). ---
	// Attributes A in [-9, 50], B in [0, 115], C in {1, 2}; n = 12.
	meta := core.NewTableMetaFromAttrs("t", []core.AttrMeta{
		{Name: "A", Min: -9, Max: 50},
		{Name: "B", Min: 0, Max: 115},
		{Name: "C", Min: 1, Max: 2},
	}, 12)
	f := core.NewComplex(meta, core.Options{MaxEntriesPerAttr: 12, AttrSel: true})

	q := sqlparse.MustParse(
		"SELECT count(*) FROM t WHERE (A > -2 AND A <= 30 AND A <> 7 OR A >= 42) AND B >= 40")
	vec, err := f.Featurize(q.Where)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Limited Disjunction Encoding of")
	fmt.Printf("  %s\n", q)
	fmt.Printf("  A  partitions: %v  (selectivity %.3f)\n", vec[0:12], vec[12])
	fmt.Printf("  B  partitions: %v  (selectivity %.3f)\n", vec[13:25], vec[25])
	fmt.Printf("  C  partitions: %v  (selectivity %.3f)\n", vec[26:28], vec[28])
	fmt.Println("  (1 = partition fully qualifies, 0.5 = partially, 0 = not at all)")
	fmt.Println()

	// --- Part 2: end to end on a mixed workload. ---
	forest, err := dataset.Forest(dataset.ForestConfig{
		Rows: 10_000, QuantAttrs: 8, BinaryAttrs: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(forest)

	set, err := workload.Mixed(forest, workload.MixedConfig{
		ConjConfig:  workload.ConjConfig{Count: 2_500, MaxAttrs: 6, MaxNotEquals: 3, Seed: 8},
		MaxBranches: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := set.Split(2_000)
	fmt.Printf("mixed workload example query:\n  %s\n\n", train[0].Query)

	est, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          "complex",
		Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
		NewRegressor: estimator.NewGBFactory(gb.DefaultConfig()),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := est.Train(train); err != nil {
		log.Fatal(err)
	}

	ours, err := estimator.Evaluate(est, test)
	if err != nil {
		log.Fatal(err)
	}
	ind, err := estimator.Evaluate(&estimator.Independence{DB: db}, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GB + complex:  %v\n", metrics.Summarize(ours))
	fmt.Printf("independence:  %v\n", metrics.Summarize(ind))
	fmt.Println("\n(disjunctions make queries *less* selective; Algorithm 2's entry-wise")
	fmt.Println(" max merge mirrors exactly that, so the learned estimator keeps working)")
}
