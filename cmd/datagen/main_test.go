package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qfe/internal/table"
)

func TestDatagenWritesEverything(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 500, 200, 25, 1); err != nil {
		t.Fatal(err)
	}
	wantFiles := []string{
		"forest.csv", "title.csv", "cast_info.csv", "movie_info.csv",
		"movie_info_idx.csv", "movie_companies.csv", "movie_keyword.csv",
		"forest_conjunctive.sql", "forest_mixed.sql", "joblight.sql",
	}
	for _, f := range wantFiles {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}

	// The forest CSV must round-trip through the table reader.
	fh, err := os.Open(filepath.Join(dir, "forest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	tbl, err := table.ReadCSV("forest", fh)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 500 {
		t.Errorf("forest.csv has %d rows, want 500", tbl.NumRows())
	}

	// Workload files carry one query per line with its cardinality comment.
	data, err := os.ReadFile(filepath.Join(dir, "forest_conjunctive.sql"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 25 {
		t.Errorf("conjunctive workload has %d lines, want 25", len(lines))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "SELECT count(*) FROM forest") {
			t.Fatalf("line %d is not a count query: %q", i, line)
		}
		if !strings.Contains(line, "-- cardinality: ") {
			t.Fatalf("line %d lacks a cardinality comment: %q", i, line)
		}
	}
}

func TestDatagenBadDirectory(t *testing.T) {
	// Writing into a path that is a file must fail cleanly.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(blocker, "sub"), 100, 100, 5, 1); err == nil {
		t.Error("expected error when output dir cannot be created")
	}
}
