// Command datagen materializes the reproduction's synthetic datasets and
// labeled query workloads to disk: CSV files for the tables, and one SQL
// query per line (with its true cardinality as a trailing comment) for the
// workloads. Useful for inspecting what the estimators train on and for
// feeding the data into other systems.
//
// Usage:
//
//	datagen -out DIR [-forest-rows N] [-imdb-titles N] [-queries N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qfe/internal/dataset"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func main() {
	out := flag.String("out", "qfe-data", "output directory")
	forestRows := flag.Int("forest-rows", 20_000, "rows in the forest table")
	imdbTitles := flag.Int("imdb-titles", 5_000, "rows in the IMDb title table")
	queries := flag.Int("queries", 1_000, "queries per workload")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if err := run(*out, *forestRows, *imdbTitles, *queries, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, forestRows, imdbTitles, queries int, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	forest, err := dataset.Forest(dataset.ForestConfig{
		Rows: forestRows, QuantAttrs: 12, BinaryAttrs: 4, Seed: seed,
	})
	if err != nil {
		return err
	}
	if err := writeTable(out, forest); err != nil {
		return err
	}

	conj, err := workload.Conjunctive(forest, workload.ConjConfig{
		Count: queries, MaxAttrs: 8, MaxNotEquals: 5, Seed: seed,
	})
	if err != nil {
		return err
	}
	if err := writeWorkload(filepath.Join(out, "forest_conjunctive.sql"), conj); err != nil {
		return err
	}

	mixed, err := workload.Mixed(forest, workload.MixedConfig{
		ConjConfig:  workload.ConjConfig{Count: queries, MaxAttrs: 8, MaxNotEquals: 5, Seed: seed + 1},
		MaxBranches: 3,
	})
	if err != nil {
		return err
	}
	if err := writeWorkload(filepath.Join(out, "forest_mixed.sql"), mixed); err != nil {
		return err
	}

	imdb, err := dataset.IMDB(dataset.IMDBConfig{Titles: imdbTitles, Seed: seed})
	if err != nil {
		return err
	}
	for _, tn := range imdb.TableNames() {
		if err := writeTable(out, imdb.Table(tn)); err != nil {
			return err
		}
	}
	schema := dataset.IMDBSchema()
	job, err := workload.JOBLight(imdb, schema, workload.DefaultJOBLightConfig())
	if err != nil {
		return err
	}
	if err := writeWorkload(filepath.Join(out, "joblight.sql"), job); err != nil {
		return err
	}

	fmt.Printf("datagen: wrote forest (%d rows), imdb (%d titles), and 3 workloads to %s\n",
		forest.NumRows(), imdbTitles, out)
	return nil
}

func writeTable(dir string, t *table.Table) error {
	f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return fmt.Errorf("write %s: %w", t.Name, err)
	}
	return f.Close()
}

func writeWorkload(path string, set workload.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, l := range set {
		if _, err := fmt.Fprintf(f, "%s -- cardinality: %d\n", l.Query, l.Card); err != nil {
			return err
		}
	}
	return f.Close()
}
