// Command infbench measures the compiled inference fast path against the
// pre-flattening reference implementations and writes the before/after
// comparison to BENCH_infer.json. Four rows cover the serving hot path end
// to end:
//
//   - gb-predict: single-vector gradient-boosting inference — the reference
//     per-tree pointer walk vs. the compiled packed-node forest with the
//     lane-interleaved descent.
//   - nn-predict: single-vector MLP inference — per-call activation
//     allocation vs. the pooled ping-pong scratch.
//   - featurize: query featurization — append-based Featurize vs.
//     fixed-offset FeaturizeInto writing a reused buffer.
//   - estimate-batch: the full estimator path — per-query Local.Estimate
//     vs. EstimateBatch amortizing one feature matrix and one batched
//     predict per sub-schema (per-query cost reported).
//
// Every "after" path is bit-identical to its "before" path by construction
// (see the differential tests next to each implementation); the numbers
// here compare wall-clock and steady-state allocations only.
//
// Usage:
//
//	go run ./cmd/infbench [-out BENCH_infer.json] [-quick]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"qfe/internal/cli"
	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
	"qfe/internal/sqlparse"
)

// result is one before/after row of the JSON report. AfterAllocsOp is the
// steady-state heap allocation count of the fast path (per op; fractional
// for the amortized batch row).
type result struct {
	Name          string  `json:"name"`
	BeforeNsOp    int64   `json:"before_ns_op"`
	AfterNsOp     int64   `json:"after_ns_op"`
	Speedup       float64 `json:"speedup"`
	AfterAllocsOp float64 `json:"after_allocs_op"`
}

// report is the BENCH_infer.json payload.
type report struct {
	Rows     []result `json:"rows"`
	Maxprocs int      `json:"gomaxprocs"`
	Quick    bool     `json:"quick"`
}

func main() {
	out := flag.String("out", "BENCH_infer.json", "output JSON path")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	flag.Parse()

	scale := 1
	if *quick {
		scale = 4
	}
	fmt.Printf("infbench: GOMAXPROCS=%d quick=%v\n", runtime.GOMAXPROCS(0), *quick)

	rows := []result{
		benchGBPredict(scale),
		benchNNPredict(scale),
	}
	fr, er, err := benchFeaturizeAndEstimate(scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "infbench:", err)
		os.Exit(1)
	}
	rows = append(rows, fr, er)

	data, err := json.MarshalIndent(report{Rows: rows, Maxprocs: runtime.GOMAXPROCS(0), Quick: *quick}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "infbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "infbench:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Printf("%-16s before %10d ns/op   after %10d ns/op   speedup %5.2fx   allocs/op %.2f\n",
			r.Name, r.BeforeNsOp, r.AfterNsOp, r.Speedup, r.AfterAllocsOp)
	}
	fmt.Println("infbench: wrote", *out)
}

func row(name string, before, after testing.BenchmarkResult, opsPerIter int) result {
	div := int64(opsPerIter)
	r := result{
		Name:          name,
		BeforeNsOp:    before.NsPerOp() / div,
		AfterNsOp:     after.NsPerOp() / div,
		AfterAllocsOp: float64(after.AllocsPerOp()) / float64(div),
	}
	if r.AfterNsOp > 0 {
		r.Speedup = float64(r.BeforeNsOp) / float64(r.AfterNsOp)
	}
	return r
}

// synthRows builds a synthetic regression problem at feature-vector scale.
func synthRows(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 10
		}
		X[i] = v
		y[i] = v[0]*3 + v[1]*v[2%d]*0.25 + rng.NormFloat64()
	}
	return X, y
}

// benchGBPredict walks a different feature vector each call — the serving
// pattern — so the layouts' cache behavior, not a single warmed-up path, is
// what the comparison sees.
func benchGBPredict(scale int) result {
	X, y := synthRows(2_000/scale, 200, 1)
	cfg := gb.DefaultConfig()
	cfg.NumTrees = 100 / scale
	m, err := gb.Train(X, y, cfg)
	if err != nil {
		fatal(err)
	}
	before := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.PredictReference(X[i%len(X)])
		}
	})
	after := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Predict(X[i%len(X)])
		}
	})
	return row("gb-predict", before, after, 1)
}

func benchNNPredict(scale int) result {
	X, y := synthRows(2_000/scale, 100, 2)
	cfg := nn.DefaultConfig()
	cfg.Epochs = 2
	m, err := nn.Train(X, y, cfg)
	if err != nil {
		fatal(err)
	}
	before := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.PredictReference(X[i%len(X)])
		}
	})
	after := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Predict(X[i%len(X)])
		}
	})
	return row("nn-predict", before, after, 1)
}

// benchFeaturizeAndEstimate shares one forest environment between the
// featurization row and the estimator row.
func benchFeaturizeAndEstimate(scale int) (fr, er result, err error) {
	env, err := cli.BuildForestEnv(cli.ForestSpec{
		Rows: 20_000 / scale, TrainN: 512 / scale, TestN: 256 / scale, Seed: 7, QFT: "complex",
	})
	if err != nil {
		return fr, er, err
	}
	opts := core.Options{MaxEntriesPerAttr: 32, AttrSel: true}

	// Featurize vs FeaturizeInto over the mixed workload's expressions.
	meta := core.NewTableMeta(env.Table, opts.MaxEntriesPerAttr)
	feat, err := core.New("complex", meta, opts)
	if err != nil {
		return fr, er, err
	}
	exprs := make([]sqlparse.Expr, len(env.Test))
	for i, lq := range env.Test {
		exprs[i] = lq.Query.Where
	}
	before := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := feat.Featurize(exprs[i%len(exprs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	dst := make([]float64, feat.Dim())
	after := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := feat.FeaturizeInto(dst, exprs[i%len(exprs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	fr = row("featurize", before, after, 1)

	// Per-query Estimate vs the amortized batch path, same trained model.
	cfg := gb.DefaultConfig()
	cfg.NumTrees = 100 / scale
	loc, err := estimator.NewLocal(env.DB, estimator.LocalConfig{
		QFT:          "complex",
		Opts:         opts,
		NewRegressor: estimator.NewGBFactory(cfg),
	})
	if err != nil {
		return fr, er, err
	}
	if err := loc.Train(env.Train); err != nil {
		return fr, er, err
	}
	qs := make([]*sqlparse.Query, len(env.Test))
	for i, lq := range env.Test {
		qs[i] = lq.Query
	}
	// Batches arrive from the serve-layer batcher, whose coalescing window
	// caps them at tens of queries, not the whole workload — chunk to that
	// size so the feature matrix matches what serving actually hands the
	// estimator.
	const batchSize = 64
	ctx := context.Background()
	single := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := loc.Estimate(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(qs); off += batchSize {
				end := off + batchSize
				if end > len(qs) {
					end = len(qs)
				}
				_, errs := loc.EstimateBatch(ctx, qs[off:end])
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	er = row("estimate-batch", single, batch, len(qs))
	return fr, er, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "infbench:", err)
	os.Exit(1)
}
