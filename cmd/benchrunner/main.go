// Command benchrunner regenerates the paper's evaluation artifacts: every
// table and figure of Section 5 plus the design ablations, printed as text
// reports.
//
// Usage:
//
//	benchrunner [-scale smoke|default|full] [-exp id[,id...]] [-list]
//
// Experiment ids follow DESIGN.md's per-experiment index (fig1..fig5,
// tab1..tab7, abl1..abl4). Without -exp, every experiment runs in paper
// order. The QFE_SCALE environment variable is an alternative to -scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qfe/internal/bench"
	"qfe/internal/cli"
)

func main() {
	scaleFlag := flag.String("scale", "", `scale profile: "smoke", "default", or "full" (default: $QFE_SCALE or "default")`)
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	workersFlag := flag.Int("workers", 0, "training/labeling goroutines for the learned models (0 = one per logical CPU); results are bit-identical for every value")
	flag.Parse()

	if *listFlag {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	if err := cli.ValidateWorkers(*workersFlag); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(2)
	}

	if *scaleFlag != "" {
		os.Setenv("QFE_SCALE", *scaleFlag)
	}
	scale := bench.CurrentScale()
	fmt.Printf("# scale profile: %s\n\n", scale.Name)
	env := bench.NewEnv(scale)
	env.Workers = *workersFlag

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			exp, ok := bench.ExperimentByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, exp)
		}
	}

	failed := 0
	for _, exp := range selected {
		start := time.Now()
		rep, err := exp.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s failed: %v\n", exp.ID, err)
			failed++
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
