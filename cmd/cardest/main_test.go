package main

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/ml/gb"
	"qfe/internal/table"
	"qfe/internal/workload"
)

func TestRunWithSingleQuery(t *testing.T) {
	err := run("conjunctive", "GB", 300, 2_000, 16,
		"SELECT count(*) FROM forest WHERE A1 >= 2500 AND A1 <= 3200", 1, "", "", 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunHeldOutEvaluation(t *testing.T) {
	if err := run("complex", "GB", 300, 2_000, 16, "", 2, "", "", 0, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "GB", 100, 1_000, 16, "", 1, "", "", 0, false, 0); err == nil {
		t.Error("unknown QFT accepted")
	}
	if err := run("conjunctive", "SVM", 100, 1_000, 16, "", 1, "", "", 0, false, 0); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("conjunctive", "GB", 100, 1_000, 16, "not sql", 1, "", "", 0, false, 0); err == nil {
		t.Error("unparseable query accepted")
	}
}

func TestRunSaveAndLoad(t *testing.T) {
	path := t.TempDir() + "/model.json"
	if err := run("conjunctive", "GB", 200, 1_500, 16, "", 3, path, "", 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("conjunctive", "GB", 200, 1_500, 16,
		"SELECT count(*) FROM forest WHERE A1 >= 2500", 3, "", path, 0, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFallbackAndTimeout(t *testing.T) {
	// The resilient chain must serve both the single-query and the
	// evaluation path; a generous deadline keeps the learned stage in play.
	if err := run("conjunctive", "GB", 200, 1_500, 16,
		"SELECT count(*) FROM forest WHERE A1 >= 2500", 4, "", "", 5*time.Second, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("conjunctive", "GB", 200, 1_500, 16, "", 4, "", "", 5*time.Second, true, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsMismatchedSchema saves an estimator trained on a different
// schema (table "meadow") and verifies that loading it against the forest
// database fails at load time with a schema error, not deep inside
// estimation.
func TestRunRejectsMismatchedSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = rng.Int63n(100)
	}
	meadow := table.New("meadow")
	meadow.MustAddColumn(table.NewColumn("B1", vals))
	db := table.NewDB()
	db.MustAdd(meadow)

	set, err := workload.Conjunctive(meadow, workload.ConjConfig{Count: 120, MaxAttrs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 8},
		NewRegressor: estimator.NewGBFactory(gb.DefaultConfig()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(set); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/meadow.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	err = run("conjunctive", "GB", 100, 1_000, 8, "", 1, "", path, 0, false, 0)
	if err == nil {
		t.Fatal("estimator trained on a different schema was accepted")
	}
	if !strings.Contains(err.Error(), "schema mismatch") {
		t.Errorf("error does not name the schema mismatch: %v", err)
	}
}
