package main

import "testing"

func TestRunWithSingleQuery(t *testing.T) {
	err := run("conjunctive", "GB", 300, 2_000, 16,
		"SELECT count(*) FROM forest WHERE A1 >= 2500 AND A1 <= 3200", 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunHeldOutEvaluation(t *testing.T) {
	if err := run("complex", "GB", 300, 2_000, 16, "", 2, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "GB", 100, 1_000, 16, "", 1, "", ""); err == nil {
		t.Error("unknown QFT accepted")
	}
	if err := run("conjunctive", "SVM", 100, 1_000, 16, "", 1, "", ""); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("conjunctive", "GB", 100, 1_000, 16, "not sql", 1, "", ""); err == nil {
		t.Error("unparseable query accepted")
	}
}

func TestRunSaveAndLoad(t *testing.T) {
	path := t.TempDir() + "/model.json"
	if err := run("conjunctive", "GB", 200, 1_500, 16, "", 3, path, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("conjunctive", "GB", 200, 1_500, 16,
		"SELECT count(*) FROM forest WHERE A1 >= 2500", 3, "", path); err != nil {
		t.Fatal(err)
	}
}
