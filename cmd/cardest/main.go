// Command cardest is the interactive face of the reproduction: it builds
// the synthetic forest dataset, trains a (QFT × model) cardinality
// estimator, and then estimates queries — either the ones supplied on the
// command line or a held-out evaluation set.
//
// Usage:
//
//	cardest [-qft conjunctive] [-model GB] [-train 2000] [-rows 20000]
//	        [-entries 32] [-query "SELECT count(*) FROM forest WHERE ..."]
//	        [-timeout 0] [-fallback]
//
// Without -query, the tool evaluates a held-out test workload and prints
// the paper's q-error summary (mean, median, 99th percentile, max). The
// workload style follows the QFT: mixed queries (AND + OR) for "complex",
// conjunctive queries for everything else.
//
// -timeout bounds each estimation call; -fallback arms the graceful-
// degradation chain (learned → sampling → independence → row-count
// heuristic) so an estimate is always produced even when the learned model
// fails or the deadline is spent. Either flag wraps the learned estimator in
// the resilience layer (see internal/resilience).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"qfe/internal/cli"
	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/metrics"
	"qfe/internal/resilience"
	"qfe/internal/sqlparse"
)

func main() {
	qft := flag.String("qft", "conjunctive", "featurization: simple, range, conjunctive, or complex")
	model := flag.String("model", "GB", "regressor: GB or NN")
	trainN := flag.Int("train", 2_000, "number of training queries")
	rows := flag.Int("rows", 20_000, "forest table rows")
	entries := flag.Int("entries", 32, "per-attribute feature entries (n)")
	query := flag.String("query", "", "a single SQL query to estimate (optional)")
	seed := flag.Int64("seed", 1, "generation seed")
	save := flag.String("save", "", "write the trained estimator to this JSON file")
	load := flag.String("load", "", "load a trained estimator from this JSON file instead of training")
	timeout := flag.Duration("timeout", 0, "per-call estimation deadline (0 = none); implies the resilience wrapper")
	fallback := flag.Bool("fallback", false, "degrade through sampling → independence → row-count when the learned model fails")
	workers := flag.Int("workers", 0, "training goroutines for the learned models (0 = one per logical CPU); trained models are bit-identical for every value")
	flag.Parse()

	if err := run(*qft, *model, *trainN, *rows, *entries, *query, *seed, *save, *load, *timeout, *fallback, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "cardest:", err)
		os.Exit(1)
	}
}

func run(qft, model string, trainN, rows, entries int, query string, seed int64, savePath, loadPath string, timeout time.Duration, fallback bool, workers int) error {
	if err := cli.ValidateWorkers(workers); err != nil {
		return err
	}
	fmt.Printf("building forest dataset (%d rows)...\n", rows)
	fmt.Printf("generating and labeling %d training queries...\n", trainN+500)
	env, err := cli.BuildForestEnv(cli.ForestSpec{
		Rows: rows, TrainN: trainN, TestN: 500, Seed: seed, QFT: qft,
	})
	if err != nil {
		return err
	}
	db, train, test := env.DB, env.Train, env.Test

	var loc *estimator.Local
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		loc, err = estimator.LoadLocal(f)
		if err != nil {
			return err
		}
		if err := loc.ValidateSchema(db); err != nil {
			return fmt.Errorf("loaded estimator from %s is incompatible with this database: %w", loadPath, err)
		}
		fmt.Printf("loaded %s from %s (%d models)\n", loc.Name(), loadPath, loc.NumModels())
	} else {
		loc, err = cli.NewLocalEstimator(db, cli.TrainSpec{
			QFT: qft, Model: model, Entries: entries, Workers: workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("training %s + %s...\n", model, qft)
		start := time.Now()
		if err := loc.Train(train); err != nil {
			return err
		}
		fmt.Printf("trained in %v (model size %.1f kB)\n", time.Since(start).Round(time.Millisecond),
			float64(loc.MemoryBytes())/1024)
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		if err := loc.SaveJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved estimator to %s\n", savePath)
	}

	// -timeout / -fallback arm the resilience layer: the learned model is
	// the first stage, cheaper baselines degrade behind it, and the
	// row-count heuristic guarantees an answer.
	var serving estimator.Estimator = loc
	var resilient *resilience.Resilient
	if timeout > 0 || fallback {
		stages := []resilience.Stage{{Name: "learned", Est: loc}}
		if fallback {
			stages = append(stages,
				resilience.Stage{Name: "sampling", Est: estimator.NewSampling(db, 0.001, seed)},
				resilience.Stage{Name: "independence", Est: &estimator.Independence{DB: db}},
			)
		}
		resilient = resilience.NewResilient(resilience.Config{
			Timeout:    timeout,
			LastResort: resilience.RowCount{DB: db},
		}, stages...)
		serving = resilient
		fmt.Printf("resilience: %d-stage chain, timeout %v, last resort %s\n",
			len(stages), timeout, resilience.RowCount{}.Name())
	}

	if query != "" {
		q, err := sqlparse.Parse(query)
		if err != nil {
			return err
		}
		if err := exec.Bind(q, db); err != nil {
			return err
		}
		var est float64
		if resilient != nil {
			res := resilient.EstimateDetailed(context.Background(), q)
			est = res.Estimate
			for _, se := range res.Errors {
				fmt.Printf("degraded:  stage %s failed: %v\n", se.Stage, se.Err)
			}
			fmt.Printf("served by: %s\n", res.Stage)
		} else {
			est, err = loc.Estimate(q)
			if err != nil {
				return err
			}
		}
		truth, err := exec.Count(db, q)
		if err != nil {
			return err
		}
		fmt.Printf("query:     %s\n", q)
		fmt.Printf("estimate:  %.0f\n", est)
		fmt.Printf("truth:     %d\n", truth)
		fmt.Printf("q-error:   %.2f\n", metrics.QError(float64(truth), est))
		return nil
	}

	sum, err := estimator.Summarize(serving, test)
	if err != nil {
		return err
	}
	fmt.Printf("held-out evaluation over %d queries: %v\n", len(test), sum)
	if resilient != nil {
		for _, st := range resilient.Stats() {
			fmt.Printf("stage %-12s breaker=%s served=%d failed=%d skipped=%d\n",
				st.Name, st.State, st.Served, st.Failed, st.Skipped)
		}
	}
	return nil
}
