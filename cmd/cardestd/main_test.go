package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps boot training fast enough for a unit test.
func tinyOptions() options {
	return options{
		qft:        "conjunctive",
		model:      "GB",
		trainN:     300,
		rows:       1500,
		entries:    8,
		seed:       1,
		timeout:    200 * time.Millisecond,
		fallback:   true,
		maxBatch:   8,
		batchDelay: time.Millisecond,
		maxInFly:   16,
		drainTO:    5 * time.Second,
		smoke:      true,
	}
}

// TestRunSmoke drives the daemon's built-in self-test: boot-train, serve on
// a random port, single + batched estimates, model listing, metrics scrape,
// clean shutdown.
func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(tinyOptions(), &out); err != nil {
		t.Fatalf("smoke run failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"single estimate", "3 results", "metrics ok", "clean shutdown"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunSaveAndLoad round-trips a boot snapshot through -save and -load.
func TestRunSaveAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "boot.json")
	o := tinyOptions()
	o.save = path
	if err := run(o, io.Discard); err != nil {
		t.Fatalf("save run: %v", err)
	}

	o = tinyOptions()
	o.load = "m1=" + path + ", m2=" + path
	o.defName = "m2"
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("load run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "models default=m2") {
		t.Errorf("-default did not take effect:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	o := tinyOptions()
	o.workers = -3
	if err := run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v, want a -workers error", err)
	}

	o = tinyOptions()
	o.load = "missing-equals-sign"
	if err := run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "name=path") {
		t.Errorf("malformed -load: err = %v, want a name=path error", err)
	}

	o = tinyOptions()
	o.defName = "ghost"
	if err := run(o, io.Discard); err == nil {
		t.Error("-default with an unknown model accepted")
	}
}

// TestRunStoreRecovery drives the crash-safe lifecycle across daemon
// restarts: the first run trains and persists a generation, the second
// recovers it from disk instead of retraining, and after at-rest corruption
// the third rejects the damaged generation and falls back to training a
// fresh one.
func TestRunStoreRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	withStore := func() options {
		o := tinyOptions()
		o.storeDir = dir
		o.canaryN = 60
		// Generous ceilings: this test exercises persistence and recovery,
		// not the tiny boot model's accuracy.
		o.canaryMedian = 1e6
		o.canaryP95 = 1e9
		return o
	}

	var out strings.Builder
	if err := run(withStore(), &out); err != nil {
		t.Fatalf("first run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "persisted as generation 1") {
		t.Fatalf("first run did not persist generation 1:\n%s", out.String())
	}

	out.Reset()
	o := withStore()
	o.probeEvery = time.Hour // exercise supervisor start/stop too
	if err := run(o, &out); err != nil {
		t.Fatalf("second run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "recovered boot") ||
		strings.Contains(out.String(), "training boot model") {
		t.Fatalf("second run did not recover from the store:\n%s", out.String())
	}

	// Bit-rot the persisted snapshot: the third run must quarantine it at
	// open, report the corruption, and retrain rather than serve bad bytes.
	snapPath := filepath.Join(dir, "gen-00000001", "snapshot.qfes")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run(withStore(), &out); err != nil {
		t.Fatalf("post-corruption run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"1 corrupt rejected", "no recoverable generation", "persisted as generation 2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("post-corruption run missing %q:\n%s", want, out.String())
		}
	}
}
