package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps boot training fast enough for a unit test.
func tinyOptions() options {
	return options{
		qft:        "conjunctive",
		model:      "GB",
		trainN:     300,
		rows:       1500,
		entries:    8,
		seed:       1,
		timeout:    200 * time.Millisecond,
		fallback:   true,
		maxBatch:   8,
		batchDelay: time.Millisecond,
		maxInFly:   16,
		drainTO:    5 * time.Second,
		smoke:      true,
	}
}

// TestRunSmoke drives the daemon's built-in self-test: boot-train, serve on
// a random port, single + batched estimates, model listing, metrics scrape,
// clean shutdown.
func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(tinyOptions(), &out); err != nil {
		t.Fatalf("smoke run failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"single estimate", "3 results", "metrics ok", "clean shutdown"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunSaveAndLoad round-trips a boot snapshot through -save and -load.
func TestRunSaveAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "boot.json")
	o := tinyOptions()
	o.save = path
	if err := run(o, io.Discard); err != nil {
		t.Fatalf("save run: %v", err)
	}

	o = tinyOptions()
	o.load = "m1=" + path + ", m2=" + path
	o.defName = "m2"
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("load run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "models default=m2") {
		t.Errorf("-default did not take effect:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	o := tinyOptions()
	o.workers = -3
	if err := run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v, want a -workers error", err)
	}

	o = tinyOptions()
	o.load = "missing-equals-sign"
	if err := run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "name=path") {
		t.Errorf("malformed -load: err = %v, want a name=path error", err)
	}

	o = tinyOptions()
	o.defName = "ghost"
	if err := run(o, io.Discard); err == nil {
		t.Error("-default with an unknown model accepted")
	}
}
