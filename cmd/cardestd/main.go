// Command cardestd is the long-lived estimation daemon: it serves the
// trained (QFT × model) estimators of this reproduction over an HTTP JSON
// API, with a hot-swappable model registry, request batching, admission
// control, and graceful drain (see internal/serve).
//
// Usage:
//
//	cardestd [-addr :8482] [-load name=path[,name=path...]] [-default name]
//	         [-qft conjunctive] [-model GB] [-train 2000] [-rows 20000]
//	         [-entries 32] [-seed 1] [-workers 0] [-save file]
//	         [-timeout 100ms] [-fallback] [-max-batch 16] [-batch-delay 2ms]
//	         [-max-inflight 64] [-drain-timeout 10s] [-smoke] [-pprof addr]
//	         [-cache-entries 4096] [-cache-off]
//	         [-store dir] [-canary 200] [-canary-median 10] [-canary-p95 100]
//	         [-probe-interval 30s] [-model-root dir]
//	         [-retrain] [-retrain-cooldown 1m] [-drift-delta 0.05]
//	         [-drift-lambda 25] [-drift-min-samples 50] [-drift-window 200]
//	         [-drift-ood-fraction 0.25]
//	         [-journal dir] [-journal-segment-size 4194304]
//	         [-journal-retention 8]
//
// Without -load, the daemon builds the synthetic forest database and trains
// a model at boot (same flags as cardest), registered as "boot". With
// -load, each name=path pair is restored via the persistence layer (local,
// global, or hybrid snapshots); the database is still built so string
// literals bind and snapshots schema-validate. Further models can be loaded
// at runtime via POST /v1/models/load without dropping in-flight requests.
//
// -store arms the crash-safe model lifecycle (see internal/store and
// internal/serve): admitted models are persisted as checksummed, fsync'd
// generations under the directory; at boot the newest valid generation is
// recovered instead of retraining (torn or corrupt generations are
// quarantined and skipped); every publish — boot, recovery, or
// POST /v1/models/load — must clear a canary gate over -canary held-out
// labeled queries (median/p95 q-error ceilings -canary-median/-canary-p95,
// rejected loads get 409); a background supervisor re-probes the live model
// every -probe-interval and, on degradation, quarantines its generation and
// rolls the registry back to the previous good one automatically.
// POST /v1/models/rollback does the same on demand.
//
// POST /v1/models/load is confined to -model-root (default: the -store
// directory, else the working directory): paths that escape it via ".." or
// an absolute prefix elsewhere are refused with 400.
//
// -retrain (which requires -store) closes the self-healing loop described
// in internal/drift and internal/trainer: a Page-Hinkley detector over the
// log2 q-error of /v1/estimate feedback plus a column-domain detector over
// live predicate literals raise drift alarms; each alarm (rate-limited by
// -retrain-cooldown) submits a supervised retraining job that relabels the
// training workload against the live data, refits the boot model family,
// and publishes only through the canary gate. Retraining is crash-safe —
// progress checkpoints ride the -store directory's fsync+rename machinery —
// and supervised: failed attempts restart with exponential backoff and
// quarantine after repeated failure, while a canary-rejected model is never
// retried (its detector rearms with a widened threshold instead).
// GET /v1/drift reports detector state, recent alarms, and the retraining
// job table; /metrics grows drift_* and retrain_* counters.
//
// The daemon memoizes estimates in a generation-scoped semantic cache
// (-cache-entries, default 4096; -cache-off disables): requests are keyed
// on the live model's registry generation plus a canonical fingerprint of
// their predicate set, so syntactic variants the featurization treats as
// equivalent share one cached estimate, concurrent identical queries
// collapse into a single model inference, and every publish or rollback
// invalidates the cache implicitly by changing the generation. While a
// drift alarm is active (-retrain) the cache is bypassed. /metrics reports
// cache_hits, cache_misses, cache_evictions, and cache_collapsed.
//
// -journal arms the durable query-feedback journal (see internal/journal):
// every served estimate — SQL, fingerprint, estimate, client-reported
// actual (with an explicit has-actual bit), latency, model generation,
// timestamp — is appended to a segmented, CRC-framed, crash-recoverable
// log under the directory. The append path never blocks serving: a slow or
// wedged journal sheds records (journal_shed in /metrics) instead of
// stalling /v1/estimate. Segments rotate at -journal-segment-size bytes and
// the newest -journal-retention sealed segments survive GC. On rotation,
// when a lifecycle is armed, a deterministic reservoir sample of recent
// labeled traffic replaces the canary workload, so publish gates score
// candidates on what production actually asks. Journaled actuals also label
// retraining queries before the exact executor runs. GET /v1/journal
// reports stats and segments; /metrics grows journal_* counters; the
// cmd/replay CLI replays segments offline against saved models.
//
// -timeout and -fallback arm the resilience chain around every registered
// model, exactly as in cardest: a deadline-bound learned stage degrading
// through sampling → independence → row-count, so the daemon always
// answers. SIGTERM/SIGINT drain gracefully: in-flight requests finish, new
// ones get 503, and the listener closes within -drain-timeout.
//
// -smoke runs a self-test instead of serving: boot on a random port, fire a
// single and a batched estimate, hot-list the models, scrape /metrics, and
// shut down cleanly; the exit code reports success.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qfe/internal/cli"
	"qfe/internal/core"
	"qfe/internal/drift"
	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/journal"
	"qfe/internal/replay"
	"qfe/internal/resilience"
	"qfe/internal/serve"
	"qfe/internal/sqlparse"
	"qfe/internal/store"
	"qfe/internal/table"
	"qfe/internal/trainer"
)

type options struct {
	addr       string
	load       string
	defName    string
	qft        string
	model      string
	trainN     int
	rows       int
	entries    int
	seed       int64
	workers    int
	save       string
	timeout    time.Duration
	fallback   bool
	maxBatch   int
	batchDelay time.Duration
	maxInFly   int
	drainTO    time.Duration
	smoke      bool
	pprofAddr  string

	cacheEntries int
	cacheOff     bool

	storeDir     string
	canaryN      int
	canaryMedian float64
	canaryP95    float64
	probeEvery   time.Duration
	modelRoot    string

	retrain         bool
	retrainCooldown time.Duration
	driftDelta      float64
	driftLambda     float64
	driftMin        int
	driftWindow     int
	driftOOD        float64

	journalDir    string
	journalSegSz  int64
	journalRetain int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8482", "listen address")
	flag.StringVar(&o.load, "load", "", "comma-separated name=path model snapshots to serve (default: train one at boot)")
	flag.StringVar(&o.defName, "default", "", "name of the default model (default: first registered)")
	flag.StringVar(&o.qft, "qft", "conjunctive", "featurization for the boot-trained model")
	flag.StringVar(&o.model, "model", "GB", "regressor for the boot-trained model: GB or NN")
	flag.IntVar(&o.trainN, "train", 2_000, "training queries for the boot-trained model")
	flag.IntVar(&o.rows, "rows", 20_000, "forest table rows")
	flag.IntVar(&o.entries, "entries", 32, "per-attribute feature entries (n)")
	flag.Int64Var(&o.seed, "seed", 1, "generation seed")
	flag.IntVar(&o.workers, "workers", 0, "training goroutines (0 = one per logical CPU)")
	flag.StringVar(&o.save, "save", "", "write the boot-trained model snapshot to this file")
	flag.DurationVar(&o.timeout, "timeout", 100*time.Millisecond, "default per-request estimation deadline (0 = none)")
	flag.BoolVar(&o.fallback, "fallback", true, "degrade through sampling → independence → row-count when the learned model fails")
	flag.IntVar(&o.maxBatch, "max-batch", 16, "largest coalesced request batch")
	flag.DurationVar(&o.batchDelay, "batch-delay", 2*time.Millisecond, "how long an open batch waits before flushing")
	flag.IntVar(&o.maxInFly, "max-inflight", 64, "concurrent estimate requests admitted before shedding with 429")
	flag.DurationVar(&o.drainTO, "drain-timeout", 10*time.Second, "graceful-drain deadline on SIGTERM")
	flag.BoolVar(&o.smoke, "smoke", false, "run the self-test (random port, batched estimate, metrics scrape) and exit")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060; empty disables)")
	flag.IntVar(&o.cacheEntries, "cache-entries", 4096, "generation-scoped estimate cache capacity (semantic fingerprint keys)")
	flag.BoolVar(&o.cacheOff, "cache-off", false, "disable the estimate cache (every request pays full featurize+inference)")
	flag.StringVar(&o.storeDir, "store", "", "crash-safe model store directory (enables canary-gated publishes, recovery, and rollback)")
	flag.IntVar(&o.canaryN, "canary", 200, "held-out labeled queries for the canary gate (0 disables the gate)")
	flag.Float64Var(&o.canaryMedian, "canary-median", 10, "canary ceiling on median q-error")
	flag.Float64Var(&o.canaryP95, "canary-p95", 100, "canary ceiling on p95 q-error")
	flag.DurationVar(&o.probeEvery, "probe-interval", 30*time.Second, "how often the supervisor re-probes the live model (0 disables)")
	flag.StringVar(&o.modelRoot, "model-root", "", "directory POST /v1/models/load may read snapshots from (default: -store dir, else the working directory)")
	flag.BoolVar(&o.retrain, "retrain", false, "arm self-healing retraining: drift alarms trigger supervised, checkpointed retrains published through the canary (requires -store)")
	flag.DurationVar(&o.retrainCooldown, "retrain-cooldown", time.Minute, "minimum gap between drift-triggered retrains")
	flag.Float64Var(&o.driftDelta, "drift-delta", 0.05, "Page-Hinkley tolerated drift of the mean log2 q-error")
	flag.Float64Var(&o.driftLambda, "drift-lambda", 25, "Page-Hinkley alarm threshold on accumulated deviation")
	flag.IntVar(&o.driftMin, "drift-min-samples", 50, "feedback observations before either drift detector may alarm")
	flag.IntVar(&o.driftWindow, "drift-window", 200, "recent numeric predicate literals the domain detector considers")
	flag.Float64Var(&o.driftOOD, "drift-ood-fraction", 0.25, "out-of-domain literal fraction that trips the domain detector")
	flag.StringVar(&o.journalDir, "journal", "", "feedback journal directory (enables durable traffic capture, GET /v1/journal, and traffic-derived canaries)")
	flag.Int64Var(&o.journalSegSz, "journal-segment-size", 4<<20, "journal segment rotation threshold in bytes")
	flag.IntVar(&o.journalRetain, "journal-retention", 8, "sealed journal segments kept before GC (negative keeps all)")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cardestd:", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	if err := cli.ValidateWorkers(o.workers); err != nil {
		return err
	}
	fmt.Fprintf(out, "building forest environment (%d rows)...\n", o.rows)
	canaryN := 0
	if o.storeDir != "" {
		canaryN = o.canaryN
	}
	env, err := cli.BuildForestEnv(cli.ForestSpec{
		Rows: o.rows, TrainN: o.trainN, TestN: canaryN, Seed: o.seed, QFT: o.qft,
	})
	if err != nil {
		return err
	}

	reg := serve.NewRegistry()
	reg.Wrap = resilienceWrap(env.DB, o)

	// -store arms the crash-safe lifecycle: recovery at boot, canary-gated
	// publishes, supervised rollback.
	var lc *serve.Lifecycle
	var st *store.Store
	recovered := false
	if o.storeDir != "" {
		st, err = store.Open(o.storeDir, store.Options{})
		if err != nil {
			return fmt.Errorf("open model store: %w", err)
		}
		rep := st.Recovery()
		fmt.Fprintf(out, "model store %s: %d valid generation(s), %d corrupt rejected, %d quarantined, %d temp swept\n",
			o.storeDir, rep.Valid, rep.Corrupt, rep.Quarantined, rep.TempSwept)
		lc, err = serve.NewLifecycle(serve.LifecycleConfig{
			Registry: reg,
			Store:    st,
			DB:       env.DB,
			Canary: serve.CanaryConfig{
				Workload:  env.Test,
				MaxMedian: o.canaryMedian,
				MaxP95:    o.canaryP95,
			},
		})
		if err != nil {
			return err
		}
		if o.load == "" {
			pub, ok, err := lc.Recover(context.Background(), "boot", true)
			if err != nil {
				return err
			}
			if ok {
				recovered = true
				fmt.Fprintf(out, "recovered %s (%s) from store generation %d: canary %s\n",
					pub.Info.Name, pub.Info.Kind, pub.Info.StoreGeneration, pub.Canary.Reason)
			} else {
				fmt.Fprintln(out, "no recoverable generation in the store; training a boot model")
			}
		}
	}

	if o.load != "" {
		for _, pair := range strings.Split(o.load, ",") {
			name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" || path == "" {
				return fmt.Errorf("-load wants name=path pairs, got %q", pair)
			}
			info, err := reg.LoadFile(name, path, env.DB, false)
			if err != nil {
				return fmt.Errorf("load %q: %w", name, err)
			}
			fmt.Fprintf(out, "loaded %s (%s, %s) from %s\n", info.Name, info.Kind, info.Estimator, path)
		}
	} else if !recovered {
		loc, err := cli.NewLocalEstimator(env.DB, cli.TrainSpec{
			QFT: o.qft, Model: o.model, Entries: o.entries, Workers: o.workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "training boot model %s + %s on %d queries...\n", o.model, o.qft, len(env.Train))
		start := time.Now()
		if err := loc.Train(env.Train); err != nil {
			return err
		}
		fmt.Fprintf(out, "trained in %v (model size %.1f kB)\n",
			time.Since(start).Round(time.Millisecond), float64(loc.MemoryBytes())/1024)
		var snap bytes.Buffer
		if err := loc.SaveJSON(&snap); err != nil {
			return err
		}
		if o.save != "" {
			if err := os.WriteFile(o.save, snap.Bytes(), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "saved boot snapshot to %s\n", o.save)
		}
		if lc != nil {
			pub, err := lc.Publish(context.Background(), serve.PublishSpec{
				Name: "boot", Est: loc, Kind: estimator.KindLocal, Source: "boot",
				Snapshot: snap.Bytes(), MakeDefault: true,
			})
			if err != nil {
				return fmt.Errorf("boot model: %w", err)
			}
			fmt.Fprintf(out, "boot model admitted (canary %s), persisted as generation %d\n",
				pub.Canary.Reason, pub.Info.StoreGeneration)
		} else if _, err := reg.Register("boot", loc, serve.ModelInfo{Kind: estimator.KindLocal, Source: "boot"}); err != nil {
			return err
		}
	}
	if o.defName != "" {
		if err := reg.SetDefault(o.defName); err != nil {
			return err
		}
	}

	modelRoot := o.modelRoot
	if modelRoot == "" {
		modelRoot = o.storeDir
	}
	if modelRoot == "" {
		modelRoot = "."
	}

	// -journal arms the durable feedback journal: every served estimate is
	// appended (shed-not-block) to a segmented CRC-framed log, recovered
	// actuals seed the retrainer's label index, and each segment rotation
	// derives a fresh canary workload from recent real traffic.
	var jnl *journal.Journal
	var actuals *replay.ActualIndex
	if o.journalDir != "" {
		actuals = replay.NewActualIndex(0)
		refreshCanary := func() {
			if lc == nil {
				return
			}
			recs, err := jnl.ReadSealed()
			if err != nil || len(recs) == 0 {
				return
			}
			ws := replay.DeriveCanary(recs, o.canaryN, o.seed)
			bound := ws[:0]
			for _, l := range ws {
				if exec.Bind(l.Query, env.DB) == nil {
					bound = append(bound, l)
				}
			}
			if len(bound) == 0 {
				return
			}
			if err := lc.SetCanaryWorkload(context.Background(), bound); err != nil {
				fmt.Fprintf(out, "journal: canary refresh skipped: %v\n", err)
				return
			}
			fmt.Fprintf(out, "journal: canary workload refreshed from traffic (%d queries)\n", len(bound))
		}
		jnl, err = journal.Open(o.journalDir, journal.Options{
			SegmentBytes: o.journalSegSz,
			Retain:       o.journalRetain,
			// Rotation means a fresh slab of real traffic just sealed; canary
			// derivation reads and re-estimates, so it runs off the writer.
			OnRotate: func(journal.SegmentInfo) { go refreshCanary() },
		})
		if err != nil {
			return fmt.Errorf("open feedback journal: %w", err)
		}
		defer jnl.Close()
		js := jnl.Stats()
		fmt.Fprintf(out, "feedback journal %s: %d sealed segment(s), %d torn tail(s) repaired, %d quarantined\n",
			o.journalDir, js.SealedSegments, js.TornTailsRepaired, js.SegmentsQuarantined)
		// Actuals that survived the restart label retraining for free.
		if recs, err := jnl.ReadSealed(); err == nil {
			actuals.PutRecords(recs)
			if n := actuals.Len(); n > 0 {
				fmt.Fprintf(out, "feedback journal: %d journaled actual(s) indexed for retraining\n", n)
			}
		}
	}

	// -retrain closes the self-healing loop: drift detectors tap the
	// /v1/estimate feedback stream, alarms submit supervised checkpointed
	// retraining jobs, and a retrained model takes traffic only by clearing
	// the same canary gate as any other publish.
	var mon *drift.Monitor
	var ctrl *trainer.Controller
	if o.retrain {
		if lc == nil {
			return fmt.Errorf("-retrain requires -store (retrained models publish through the canary-gated lifecycle)")
		}
		qs := make([]*sqlparse.Query, len(env.Train))
		for i := range env.Train {
			qs[i] = env.Train[i].Query
		}
		retCfg := trainer.RetrainConfig{
			DB:      env.DB,
			Queries: qs,
			NewEstimator: func() (*estimator.Local, error) {
				return cli.NewLocalEstimator(env.DB, cli.TrainSpec{
					QFT: o.qft, Model: o.model, Entries: o.entries, Workers: o.workers,
				})
			},
			Lifecycle:  lc,
			Checkpoint: trainer.NewStoreCheckpointer(st, "retrain"),
			Workers:    o.workers,
		}
		if actuals != nil {
			// Journaled actuals label matching training queries for free
			// before the exact executor runs.
			retCfg.ActualLookup = actuals.Lookup
		}
		ret, err := trainer.NewRetrainer(retCfg)
		if err != nil {
			return err
		}
		tsup := trainer.NewSupervisor()
		defer tsup.Close()
		qcfg := drift.DefaultQErrorConfig()
		qcfg.Delta, qcfg.Lambda, qcfg.MinSamples = o.driftDelta, o.driftLambda, o.driftMin
		dcfg := drift.DefaultDomainConfig()
		dcfg.Window, dcfg.MaxOODFraction, dcfg.MinSamples = o.driftWindow, o.driftOOD, o.driftMin
		mon, err = drift.NewMonitor(env.DB, drift.MonitorConfig{
			QError:  qcfg,
			Domain:  dcfg,
			OnEvent: func(ev drift.Event) { ctrl.HandleEvent(ev) },
		})
		if err != nil {
			return err
		}
		ctrl, err = trainer.NewController(trainer.ControllerConfig{
			Supervisor: tsup,
			Retrainer:  ret,
			Monitor:    mon,
			Cooldown:   o.retrainCooldown,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "self-healing retraining armed (lambda %.0f, window %d, cooldown %v)\n",
			o.driftLambda, o.driftWindow, o.retrainCooldown)
	}

	cacheEntries := o.cacheEntries
	if o.cacheOff {
		cacheEntries = 0
	}
	if cacheEntries > 0 {
		fmt.Fprintf(out, "estimate cache: %d entries, keyed on (generation, query fingerprint)\n", cacheEntries)
	} else {
		fmt.Fprintln(out, "estimate cache: off")
	}

	cfg := serve.Config{
		Registry:       reg,
		DB:             env.DB,
		Batcher:        serve.BatcherConfig{MaxBatch: o.maxBatch, MaxDelay: o.batchDelay, Workers: o.workers},
		MaxInFlight:    o.maxInFly,
		DefaultTimeout: o.timeout,
		ModelRoot:      modelRoot,
		Lifecycle:      lc,
		Cache:          serve.CacheConfig{Entries: cacheEntries},
	}
	if mon != nil {
		// While a drift alarm is pending, serving a memoized estimate would
		// hide exactly the staleness the detectors just flagged.
		cfg.CacheBypass = mon.AlarmActive
	}
	if mon != nil || jnl != nil {
		cfg.Feedback = func(ev serve.FeedbackEvent) {
			if mon != nil {
				mon.ObserveFeedback(ev.Query, ev.Estimate, ev.Actual, ev.HasActual)
			}
			if jnl != nil {
				fp := core.Fingerprint(ev.Query)
				// Append is a non-blocking enqueue: a wedged journal sheds
				// records (counted in journal_shed) and the estimate path
				// never waits.
				jnl.Append(journal.Record{
					SQL:           ev.SQL,
					Fingerprint:   fp,
					Model:         ev.Model,
					Generation:    ev.Generation,
					Estimate:      ev.Estimate,
					Actual:        ev.Actual,
					HasActual:     ev.HasActual,
					LatencyMicros: ev.Latency.Microseconds(),
				})
				if ev.HasActual {
					actuals.Put(fp, ev.Actual)
				}
			}
		}
	}
	if mon != nil || jnl != nil {
		cfg.ExtraMetrics = func() map[string]any {
			extra := map[string]any{}
			if mon != nil {
				for k, v := range mon.Counters() {
					extra[k] = v
				}
				for k, v := range ctrl.Counters() {
					extra[k] = v
				}
			}
			if jnl != nil {
				for k, v := range journalCounters(jnl) {
					extra[k] = v
				}
			}
			return extra
		}
	}
	cfg.StatusPages = map[string]func() any{}
	if mon != nil {
		cfg.StatusPages["/v1/drift"] = func() any {
			return map[string]any{"drift": mon.Status(), "retrain": ctrl.Status()}
		}
	}
	if jnl != nil {
		cfg.StatusPages["/v1/journal"] = func() any {
			return map[string]any{
				"dir":      jnl.Dir(),
				"stats":    jnl.Stats(),
				"segments": jnl.Segments(),
				"indexed":  actuals.Len(),
			}
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	if lc != nil && o.probeEvery > 0 {
		sup := serve.StartSupervisor(serve.SupervisorConfig{Lifecycle: lc, Interval: o.probeEvery})
		defer sup.Close()
		fmt.Fprintf(out, "supervisor probing the live model every %v\n", o.probeEvery)
	}

	if o.smoke {
		return smoke(srv, cacheEntries > 0, out)
	}
	return listenAndServe(srv, o, out)
}

// journalCounters flattens the journal's stats into /metrics keys.
func journalCounters(jnl *journal.Journal) map[string]any {
	s := jnl.Stats()
	return map[string]any{
		"journal_appended":     s.Appended,
		"journal_shed":         s.Shed,
		"journal_persisted":    s.Persisted,
		"journal_dropped":      s.Dropped,
		"journal_flushes":      s.Flushes,
		"journal_flush_errors": s.FlushErrors,
		"journal_rotations":    s.Rotations,
		"journal_gc_removed":   s.GCRemoved,
		"journal_segments":     s.SealedSegments,
		"journal_active_bytes": s.ActiveBytes,
	}
}

// resilienceWrap arms the graceful-degradation chain around each registered
// model when a timeout or fallback is configured; otherwise models serve
// bare.
func resilienceWrap(db *table.DB, o options) func(estimator.Estimator) estimator.Estimator {
	if o.timeout <= 0 && !o.fallback {
		return nil
	}
	return func(est estimator.Estimator) estimator.Estimator {
		stages := []resilience.Stage{{Name: "learned", Est: est}}
		if o.fallback {
			stages = append(stages,
				resilience.Stage{Name: "sampling", Est: estimator.NewSampling(db, 0.001, o.seed)},
				resilience.Stage{Name: "independence", Est: &estimator.Independence{DB: db}},
			)
		}
		return resilience.NewResilient(resilience.Config{
			Timeout:    o.timeout,
			LastResort: resilience.RowCount{DB: db},
		}, stages...)
	}
}

// listenAndServe runs the daemon until SIGTERM/SIGINT, then drains: new
// requests are refused with 503, in-flight requests finish, and the
// listener closes within the drain deadline.
func listenAndServe(srv *serve.Server, o options, out io.Writer) error {
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -pprof exposes the profiling handlers on their own listener, never on
	// the serving address, so the fast path can be profiled in production
	// without widening the public API surface. Off by default.
	if o.pprofAddr != "" {
		pp := &http.Server{Addr: o.pprofAddr, Handler: pprofMux()}
		go func() {
			if err := pp.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(out, "pprof listener: %v\n", err)
			}
		}()
		defer pp.Close()
		fmt.Fprintf(out, "pprof listening on %s\n", o.pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(out, "cardestd listening on %s\n", o.addr)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "signal received; draining...")
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), o.drainTO)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	srv.Close()
	if err != nil {
		return fmt.Errorf("drain did not finish within %v: %w", o.drainTO, err)
	}
	fmt.Fprintln(out, "drained cleanly")
	return nil
}

// pprofMux registers the net/http/pprof handlers on a dedicated mux (not
// http.DefaultServeMux), so the profiling surface exists only on the -pprof
// listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// smoke is the self-test behind `make serve-smoke`: serve on a random
// port, exercise the API end to end, verify the metrics reflect the load,
// and shut down cleanly.
func smoke(srv *serve.Server, cacheOn bool, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // shut down below
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "smoke: serving on %s\n", base)

	get := func(path string) (map[string]any, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		var v map[string]any
		return v, json.NewDecoder(resp.Body).Decode(&v)
	}
	post := func(path string, body any) (map[string]any, error) {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, b)
		}
		var v map[string]any
		return v, json.NewDecoder(resp.Body).Decode(&v)
	}

	if _, err := get("/healthz"); err != nil {
		return err
	}
	single, err := post("/v1/estimate", map[string]any{
		"sql": "SELECT count(*) FROM forest WHERE A1 >= 3 AND A2 <= 7",
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "smoke: single estimate = %v (stage %v)\n", single["estimate"], single["stage"])

	batch := map[string]any{"queries": []map[string]any{
		{"sql": "SELECT count(*) FROM forest WHERE A1 = 5"},
		{"sql": "SELECT count(*) FROM forest WHERE A2 > 2 AND A3 <> 0"},
		{"sql": "SELECT count(*) FROM forest WHERE A4 < 9"},
	}}
	br, err := post("/v1/estimate", batch)
	if err != nil {
		return err
	}
	results, _ := br["results"].([]any)
	if len(results) != 3 {
		return fmt.Errorf("smoke: batched estimate returned %d results, want 3", len(results))
	}
	fmt.Fprintf(out, "smoke: batched estimate returned %d results\n", len(results))

	// The same query again: with the cache on (the default) this second
	// request must be answered from the generation-scoped cache.
	if _, err := post("/v1/estimate", map[string]any{
		"sql": "SELECT count(*) FROM forest WHERE A1 >= 3 AND A2 <= 7",
	}); err != nil {
		return err
	}

	models, err := get("/v1/models")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "smoke: models default=%v\n", models["default"])

	m, err := get("/metrics")
	if err != nil {
		return err
	}
	reqs, _ := m["requests_total"].(float64)
	qs, _ := m["queries_total"].(float64)
	if reqs < 2 || qs < 4 {
		return fmt.Errorf("smoke: metrics report %v requests / %v queries, want >= 2 / >= 4", reqs, qs)
	}
	fmt.Fprintf(out, "smoke: metrics ok (%v requests, %v queries)\n", reqs, qs)
	if cacheOn {
		hits, _ := m["cache_hits"].(float64)
		if hits < 1 {
			return fmt.Errorf("smoke: repeated estimate produced %v cache hits, want >= 1", hits)
		}
		fmt.Fprintf(out, "smoke: estimate cache ok (%v hits)\n", hits)
	}

	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	fmt.Fprintln(out, "smoke: clean shutdown")
	return nil
}
