// Command parbench measures the sequential-vs-parallel speedup of the three
// hot paths that internal/parallel drives — workload labeling
// (exec.CountManyWorkers), gradient-boosting training (gb.Train), and
// neural-network training (nn.Train) — and writes the results to
// BENCH_parallel.json. Every path is bit-identical across worker counts, so
// the numbers compare wall-clock only.
//
// It also benchmarks the serving estimate cache: a repeated workload is
// replayed through the HTTP handler against a cache-off server, a cold
// cache, and a warm cache, and the throughput comparison is written to
// BENCH_serve_cache.json.
//
// Usage:
//
//	go run ./cmd/parbench [-out BENCH_parallel.json] [-workers N] [-quick]
//	go run ./cmd/parbench -cache-only [-cache-out BENCH_serve_cache.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qfe/internal/cli"
	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
	"qfe/internal/parallel"
	"qfe/internal/serve"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// result is one benchmark row of the JSON report.
type result struct {
	Name     string  `json:"name"`
	SeqNsOp  int64   `json:"seq_ns_op"`
	ParNsOp  int64   `json:"par_ns_op"`
	Speedup  float64 `json:"speedup"`
	Workers  int     `json:"workers"`
	Maxprocs int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path")
	workers := flag.Int("workers", 0, "parallel worker count (0 = one per logical CPU)")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	cacheOut := flag.String("cache-out", "BENCH_serve_cache.json", "serving-cache benchmark output JSON path")
	cacheOnly := flag.Bool("cache-only", false, "run only the serving-cache benchmark")
	flag.Parse()

	w := parallel.Workers(*workers)
	fmt.Printf("parbench: %d workers, GOMAXPROCS=%d\n", w, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("parbench: single logical CPU — expect speedup ~1.0; run on multi-core hardware to see the parallel gain")
	}

	scale := 1
	if *quick {
		scale = 4
	}

	if !*cacheOnly {
		var results []result
		results = append(results, benchLabeling(w, scale))
		results = append(results, benchGB(w, scale))
		results = append(results, benchNN(w, scale))

		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "parbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "parbench:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-12s seq %12d ns/op   par %12d ns/op   speedup %.2fx\n",
				r.Name, r.SeqNsOp, r.ParNsOp, r.Speedup)
		}
		fmt.Println("parbench: wrote", *out)
	}

	if err := benchServeCache(scale, *cacheOut); err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		os.Exit(1)
	}
}

func report(name string, w int, seq, par testing.BenchmarkResult) result {
	r := result{
		Name:     name,
		SeqNsOp:  seq.NsPerOp(),
		ParNsOp:  par.NsPerOp(),
		Workers:  w,
		Maxprocs: runtime.GOMAXPROCS(0),
	}
	if r.ParNsOp > 0 {
		r.Speedup = float64(r.SeqNsOp) / float64(r.ParNsOp)
	}
	return r
}

// benchLabeling measures batch labeling of a query workload with one worker
// versus the configured pool (both share the predicate-bitmap cache).
func benchLabeling(w, scale int) result {
	rows, count := 200_000/scale, 400/scale
	rng := rand.New(rand.NewSource(1))
	a := make([]int64, rows)
	b := make([]int64, rows)
	for i := 0; i < rows; i++ {
		a[i] = int64(rng.Intn(1000))
		b[i] = int64(rng.Intn(10))
	}
	t := table.New("g")
	t.MustAddColumn(table.NewColumn("a", a))
	t.MustAddColumn(table.NewColumn("b", b))
	db := table.NewDB()
	db.MustAdd(t)

	qs := make([]*sqlparse.Query, count)
	for i := range qs {
		lo := int64(rng.Intn(900))
		qs[i] = &sqlparse.Query{Tables: []string{"g"}, Where: sqlparse.NewAnd(
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpGe, Val: lo},
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: lo + int64(rng.Intn(100))},
			&sqlparse.Pred{Attr: "b", Op: sqlparse.OpEq, Val: int64(rng.Intn(10))},
		)}
	}
	ctx := context.Background()
	run := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				if _, err := exec.CountManyWorkers(ctx, db, qs, workers); err != nil {
					bb.Fatal(err)
				}
			}
		})
	}
	return report("labeling", w, run(1), run(w))
}

// benchGB measures gradient-boosting training with one worker versus the
// configured pool.
func benchGB(w, scale int) result {
	X, y := synthData(2_000/scale, 200)
	run := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(bb *testing.B) {
			cfg := gb.DefaultConfig()
			cfg.NumTrees = 30
			cfg.Workers = workers
			for i := 0; i < bb.N; i++ {
				if _, err := gb.Train(X, y, cfg); err != nil {
					bb.Fatal(err)
				}
			}
		})
	}
	return report("gb-train", w, run(1), run(w))
}

// benchNN measures neural-network training with one worker versus the
// configured pool.
func benchNN(w, scale int) result {
	X, y := synthData(2_000/scale, 100)
	run := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(bb *testing.B) {
			cfg := nn.DefaultConfig()
			cfg.Epochs = 5
			cfg.Workers = workers
			for i := 0; i < bb.N; i++ {
				if _, err := nn.Train(X, y, cfg); err != nil {
					bb.Fatal(err)
				}
			}
		})
	}
	return report("nn-train", w, run(1), run(w))
}

// cacheBenchRow is one serving configuration's throughput measurement.
type cacheBenchRow struct {
	Name      string  `json:"name"`
	Requests  int64   `json:"requests"`
	NsOp      int64   `json:"ns_op"`
	QPS       float64 `json:"qps"`
	CacheHits int64   `json:"cache_hits"`
}

// cacheBenchReport is the BENCH_serve_cache.json payload.
type cacheBenchReport struct {
	Distinct    int             `json:"distinct_queries"`
	Clients     int             `json:"clients"`
	Rows        []cacheBenchRow `json:"rows"`
	WarmSpeedup float64         `json:"warm_vs_off_speedup"`
	Maxprocs    int             `json:"gomaxprocs"`
}

// benchServeCache replays a repeated workload through the HTTP estimate
// handler with cmd/cardestd's default batcher settings (MaxBatch 16,
// MaxDelay 2ms) and compares three servings of the same traffic: the cache
// disabled, a cold cache (first sight of every query), and a warm cache.
// The workload repeats on purpose — the cache's case is exactly the
// dashboard/optimizer pattern where identical queries recur.
func benchServeCache(scale int, out string) error {
	env, err := cli.BuildForestEnv(cli.ForestSpec{
		Rows: 50_000 / scale, TrainN: 64, TestN: 0, Seed: 7, QFT: "complex",
	})
	if err != nil {
		return err
	}
	const (
		distinct = 32
		clients  = 8
	)
	rounds := 12 / scale
	if rounds < 2 {
		rounds = 2
	}
	sqls := make([]string, distinct)
	for i := range sqls {
		sqls[i] = env.Train[i].Query.String()
	}

	newServer := func(cacheEntries int) (*serve.Server, error) {
		reg := serve.NewRegistry()
		if _, err := reg.Register("bench", &estimator.Independence{DB: env.DB}, serve.ModelInfo{Kind: "baseline", Source: "parbench"}); err != nil {
			return nil, err
		}
		return serve.New(serve.Config{
			Registry:    reg,
			DB:          env.DB,
			MaxInFlight: 256,
			Batcher:     serve.BatcherConfig{MaxBatch: 16, MaxDelay: 2 * time.Millisecond},
			Cache:       serve.CacheConfig{Entries: cacheEntries},
		})
	}

	// replay fires clients goroutines, each posting every query `rounds`
	// times (offset per client so the mix interleaves), and returns the
	// aggregate request count and wall time.
	replay := func(h http.Handler, rounds int) (int64, time.Duration, error) {
		var requests atomic.Int64
		var failures atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for i := 0; i < len(sqls); i++ {
						sql := sqls[(i+c)%len(sqls)]
						body := `{"sql":` + strconv.Quote(sql) + `}`
						req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(body))
						req.Header.Set("Content-Type", "application/json")
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, req)
						requests.Add(1)
						if rec.Code != http.StatusOK {
							failures.Add(1)
						}
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if n := failures.Load(); n > 0 {
			return 0, 0, fmt.Errorf("serve-cache bench: %d of %d requests failed", n, requests.Load())
		}
		return requests.Load(), elapsed, nil
	}

	row := func(name string, n int64, elapsed time.Duration, hits int64) cacheBenchRow {
		r := cacheBenchRow{Name: name, Requests: n, CacheHits: hits, QPS: float64(n) / elapsed.Seconds()}
		if n > 0 {
			r.NsOp = elapsed.Nanoseconds() / n
		}
		return r
	}

	report := cacheBenchReport{Distinct: distinct, Clients: clients, Maxprocs: runtime.GOMAXPROCS(0)}

	// Cache off: every request rides the coalescing batcher to the model.
	srvOff, err := newServer(0)
	if err != nil {
		return err
	}
	nOff, dOff, err := replay(srvOff.Handler(), rounds)
	srvOff.Close()
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, row("cache-off", nOff, dOff, 0))

	// Cache on: one cold pass over the distinct set fills it, then the warm
	// replay is measured separately.
	srvOn, err := newServer(4096)
	if err != nil {
		return err
	}
	defer srvOn.Close()
	h := srvOn.Handler()
	nCold, dCold, err := replay(h, 1)
	if err != nil {
		return err
	}
	hitsAfterCold := metricCounter(h, "cache_hits")
	report.Rows = append(report.Rows, row("cache-cold", nCold, dCold, hitsAfterCold))

	nWarm, dWarm, err := replay(h, rounds)
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, row("cache-warm", nWarm, dWarm, metricCounter(h, "cache_hits")-hitsAfterCold))

	qpsOff := float64(nOff) / dOff.Seconds()
	qpsWarm := float64(nWarm) / dWarm.Seconds()
	if qpsOff > 0 {
		report.WarmSpeedup = qpsWarm / qpsOff
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, r := range report.Rows {
		fmt.Printf("%-12s %8d req   %10d ns/op   %12.0f qps   hits %d\n", r.Name, r.Requests, r.NsOp, r.QPS, r.CacheHits)
	}
	fmt.Printf("serve-cache: warm vs off speedup %.2fx\n", report.WarmSpeedup)
	fmt.Println("parbench: wrote", out)
	return nil
}

// metricCounter scrapes one integer counter from the server's /metrics.
func metricCounter(h http.Handler, name string) int64 {
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		return 0
	}
	v, _ := snap[name].(float64)
	return int64(v)
}

func synthData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 3*row[0] - 2*row[1] + row[d-1]
	}
	return X, y
}
