// Command parbench measures the sequential-vs-parallel speedup of the three
// hot paths that internal/parallel drives — workload labeling
// (exec.CountManyWorkers), gradient-boosting training (gb.Train), and
// neural-network training (nn.Train) — and writes the results to
// BENCH_parallel.json. Every path is bit-identical across worker counts, so
// the numbers compare wall-clock only.
//
// Usage:
//
//	go run ./cmd/parbench [-out BENCH_parallel.json] [-workers N] [-quick]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"qfe/internal/exec"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
	"qfe/internal/parallel"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// result is one benchmark row of the JSON report.
type result struct {
	Name     string  `json:"name"`
	SeqNsOp  int64   `json:"seq_ns_op"`
	ParNsOp  int64   `json:"par_ns_op"`
	Speedup  float64 `json:"speedup"`
	Workers  int     `json:"workers"`
	Maxprocs int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path")
	workers := flag.Int("workers", 0, "parallel worker count (0 = one per logical CPU)")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	flag.Parse()

	w := parallel.Workers(*workers)
	fmt.Printf("parbench: %d workers, GOMAXPROCS=%d\n", w, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("parbench: single logical CPU — expect speedup ~1.0; run on multi-core hardware to see the parallel gain")
	}

	scale := 1
	if *quick {
		scale = 4
	}

	var results []result
	results = append(results, benchLabeling(w, scale))
	results = append(results, benchGB(w, scale))
	results = append(results, benchNN(w, scale))

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("%-12s seq %12d ns/op   par %12d ns/op   speedup %.2fx\n",
			r.Name, r.SeqNsOp, r.ParNsOp, r.Speedup)
	}
	fmt.Println("parbench: wrote", *out)
}

func report(name string, w int, seq, par testing.BenchmarkResult) result {
	r := result{
		Name:     name,
		SeqNsOp:  seq.NsPerOp(),
		ParNsOp:  par.NsPerOp(),
		Workers:  w,
		Maxprocs: runtime.GOMAXPROCS(0),
	}
	if r.ParNsOp > 0 {
		r.Speedup = float64(r.SeqNsOp) / float64(r.ParNsOp)
	}
	return r
}

// benchLabeling measures batch labeling of a query workload with one worker
// versus the configured pool (both share the predicate-bitmap cache).
func benchLabeling(w, scale int) result {
	rows, count := 200_000/scale, 400/scale
	rng := rand.New(rand.NewSource(1))
	a := make([]int64, rows)
	b := make([]int64, rows)
	for i := 0; i < rows; i++ {
		a[i] = int64(rng.Intn(1000))
		b[i] = int64(rng.Intn(10))
	}
	t := table.New("g")
	t.MustAddColumn(table.NewColumn("a", a))
	t.MustAddColumn(table.NewColumn("b", b))
	db := table.NewDB()
	db.MustAdd(t)

	qs := make([]*sqlparse.Query, count)
	for i := range qs {
		lo := int64(rng.Intn(900))
		qs[i] = &sqlparse.Query{Tables: []string{"g"}, Where: sqlparse.NewAnd(
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpGe, Val: lo},
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: lo + int64(rng.Intn(100))},
			&sqlparse.Pred{Attr: "b", Op: sqlparse.OpEq, Val: int64(rng.Intn(10))},
		)}
	}
	ctx := context.Background()
	run := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				if _, err := exec.CountManyWorkers(ctx, db, qs, workers); err != nil {
					bb.Fatal(err)
				}
			}
		})
	}
	return report("labeling", w, run(1), run(w))
}

// benchGB measures gradient-boosting training with one worker versus the
// configured pool.
func benchGB(w, scale int) result {
	X, y := synthData(2_000/scale, 200)
	run := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(bb *testing.B) {
			cfg := gb.DefaultConfig()
			cfg.NumTrees = 30
			cfg.Workers = workers
			for i := 0; i < bb.N; i++ {
				if _, err := gb.Train(X, y, cfg); err != nil {
					bb.Fatal(err)
				}
			}
		})
	}
	return report("gb-train", w, run(1), run(w))
}

// benchNN measures neural-network training with one worker versus the
// configured pool.
func benchNN(w, scale int) result {
	X, y := synthData(2_000/scale, 100)
	run := func(workers int) testing.BenchmarkResult {
		return testing.Benchmark(func(bb *testing.B) {
			cfg := nn.DefaultConfig()
			cfg.Epochs = 5
			cfg.Workers = workers
			for i := 0; i < bb.N; i++ {
				if _, err := nn.Train(X, y, cfg); err != nil {
					bb.Fatal(err)
				}
			}
		})
	}
	return report("nn-train", w, run(1), run(w))
}

func synthData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 3*row[0] - 2*row[1] + row[d-1]
	}
	return X, y
}
