// Command journalbench measures the feedback journal's two hot loops and
// writes the numbers to a JSON report (the `make bench-journal` artifact):
//
//   - append throughput, batched fsync vs. one fsync per record — the
//     difference is the whole argument for the journal's writer design
//     (Options.FlushBatch), so the report keeps it honest;
//   - replay throughput: journaled records streamed back through an
//     estimator (the independence baseline: cheap, deterministic, no
//     training), in queries per second.
//
// Usage:
//
//	journalbench [-records 20000] [-batch 64] [-rows 20000] [-seed 1]
//	             [-out BENCH_journal.json]
//
// Appends run against a real on-disk journal in a temp directory (real
// fsyncs — this is a disk benchmark), waiting for durability via Sync, so
// "records/s" means durably journaled records per second.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/journal"
	"qfe/internal/replay"
	"qfe/internal/table"
	"qfe/internal/workload"
)

type options struct {
	records int
	batch   int
	rows    int
	seed    int64
	out     string
}

type appendResult struct {
	Mode      string  `json:"mode"` // "batched" or "per-record"
	Records   int     `json:"records"`
	Persisted uint64  `json:"persisted"`
	Shed      uint64  `json:"shed"`
	Flushes   uint64  `json:"flushes"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"recordsPerSecond"`
}

type replayResult struct {
	Records   int     `json:"records"`
	Scored    int     `json:"scored"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"queriesPerSecond"`
	Median    float64 `json:"median"`
	P95       float64 `json:"p95"`
}

type report struct {
	Records int            `json:"records"`
	Batch   int            `json:"flushBatch"`
	Append  []appendResult `json:"append"`
	Replay  replayResult   `json:"replay"`
}

func main() {
	var o options
	flag.IntVar(&o.records, "records", 20_000, "records per append run")
	flag.IntVar(&o.batch, "batch", 64, "FlushBatch for the batched run")
	flag.IntVar(&o.rows, "rows", 20_000, "forest table rows for the replay estimator")
	flag.Int64Var(&o.seed, "seed", 1, "workload generation seed")
	flag.StringVar(&o.out, "out", "BENCH_journal.json", "report path")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "journalbench:", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	forest, err := dataset.Forest(dataset.ForestConfig{Rows: o.rows, QuantAttrs: 12, BinaryAttrs: 4, Seed: o.seed})
	if err != nil {
		return err
	}
	db := table.NewDB()
	db.MustAdd(forest)
	ws, err := workload.Conjunctive(forest, workload.ConjConfig{
		Count: min(o.records, 2000), MaxAttrs: 8, MaxNotEquals: 5, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	records := make([]journal.Record, o.records)
	for i := range records {
		l := ws[i%len(ws)]
		records[i] = journal.Record{
			UnixMicros: int64(i) + 1,
			SQL:        l.Query.String(),
			Estimate:   float64(l.Card) * 1.5,
			Actual:     float64(l.Card),
			HasActual:  true,
			Model:      "bench",
			Generation: 1,
		}
	}

	rep := report{Records: o.records, Batch: o.batch}
	for _, mode := range []struct {
		name  string
		batch int
		recs  []journal.Record
	}{
		{"batched", o.batch, records},
		// Per-record fsync is slow by design; a subset keeps the run short
		// while the per-second rate stays comparable.
		{"per-record", 1, records[:min(len(records), 2000)]},
	} {
		res, err := benchAppend(mode.recs, mode.batch)
		if err != nil {
			return err
		}
		res.Mode = mode.name
		rep.Append = append(rep.Append, res)
		fmt.Fprintf(out, "append %-10s %8.0f records/s (%d flushes, %d shed)\n",
			mode.name, res.PerSecond, res.Flushes, res.Shed)
	}

	est := &estimator.Independence{DB: db}
	start := time.Now()
	rr := replay.Replay(context.Background(), est, records)
	elapsed := time.Since(start).Seconds()
	rep.Replay = replayResult{
		Records: rr.Records, Scored: rr.Scored, Seconds: elapsed,
		PerSecond: float64(rr.Scored) / elapsed, Median: rr.Median, P95: rr.P95,
	}
	fmt.Fprintf(out, "replay %8.0f queries/s (median q-error %.2f)\n", rep.Replay.PerSecond, rr.Median)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", o.out)
	return nil
}

// benchAppend journals every record with the given flush batch and waits
// for full durability; the clock covers enqueue through final fsync.
func benchAppend(records []journal.Record, batch int) (appendResult, error) {
	dir, err := os.MkdirTemp("", "journalbench-*")
	if err != nil {
		return appendResult{}, err
	}
	defer os.RemoveAll(dir)
	jnl, err := journal.Open(dir, journal.Options{
		SegmentBytes: 64 << 20, // keep one segment: this measures appends, not rotation
		FlushBatch:   batch,
		FlushEvery:   time.Millisecond,
		Queue:        len(records),
	})
	if err != nil {
		return appendResult{}, err
	}
	start := time.Now()
	for _, rec := range records {
		jnl.Append(rec)
	}
	if err := jnl.Sync(); err != nil {
		jnl.Close()
		return appendResult{}, err
	}
	elapsed := time.Since(start).Seconds()
	stats := jnl.Stats()
	if err := jnl.Close(); err != nil {
		return appendResult{}, err
	}
	return appendResult{
		Records:   len(records),
		Persisted: stats.Persisted,
		Shed:      stats.Shed,
		Flushes:   stats.Flushes,
		Seconds:   elapsed,
		PerSecond: float64(stats.Persisted) / elapsed,
	}, nil
}
