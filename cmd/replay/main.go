// Command replay scores saved models against the real traffic captured by
// a cardestd feedback journal (see internal/journal and internal/replay):
// it reads the journal's segments offline — tolerantly, without mutating
// them, so it is safe to point at a live daemon's directory — and streams
// every labeled record through each requested estimator, printing a
// per-model q-error report (median/p95/max, per-table breakdowns).
//
// Usage:
//
//	replay -journal dir [-snapshot name=path[,name=path...]] [-store dir]
//	       [-rows 20000] [-seed 1] [-derive-canary 0] [-json]
//
// Models come from two places, combinable:
//
//   - -snapshot name=path pairs load persistence-layer snapshots (the
//     -save output of cardest/cardestd, or anything POST /v1/models/load
//     accepts);
//   - -store replays against every valid generation of a crash-safe model
//     store directory, named gen-N (published-as names shown alongside).
//
// The forest database is rebuilt from -rows/-seed (match the serving
// daemon's flags) so snapshots schema-validate and string literals bind.
//
// -derive-canary N additionally derives the N-query traffic canary exactly
// as the daemon does on segment rotation (deterministic reservoir sample,
// keyed by -seed) and prints it — useful for inspecting what a rotation
// would install as the publish gate.
//
// -json emits the reports as one JSON document for scripting; the default
// is a human-readable table.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/journal"
	"qfe/internal/replay"
	"qfe/internal/store"
	"qfe/internal/table"
)

type options struct {
	journalDir   string
	snapshots    string
	storeDir     string
	rows         int
	seed         int64
	deriveCanary int
	asJSON       bool
}

func main() {
	var o options
	flag.StringVar(&o.journalDir, "journal", "", "feedback journal directory to replay (required)")
	flag.StringVar(&o.snapshots, "snapshot", "", "comma-separated name=path model snapshots to score")
	flag.StringVar(&o.storeDir, "store", "", "crash-safe model store; every valid generation is scored")
	flag.IntVar(&o.rows, "rows", 20_000, "forest table rows (match the serving daemon)")
	flag.Int64Var(&o.seed, "seed", 1, "generation seed (match the serving daemon)")
	flag.IntVar(&o.deriveCanary, "derive-canary", 0, "also derive and print an N-query traffic canary (0 skips)")
	flag.BoolVar(&o.asJSON, "json", false, "emit reports as JSON")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

type namedEst struct {
	name string
	est  estimator.Estimator
}

func run(o options, out io.Writer) error {
	if o.journalDir == "" {
		return fmt.Errorf("-journal is required")
	}
	records, rep, err := journal.Read(nil, o.journalDir)
	if err != nil {
		return fmt.Errorf("read journal %s: %w", o.journalDir, err)
	}
	fmt.Fprintf(out, "journal %s: %d record(s) across %d segment(s)", o.journalDir, rep.Records, rep.Segments)
	if rep.TornTails > 0 || rep.CorruptSegments > 0 || rep.Quarantined > 0 {
		fmt.Fprintf(out, " (%d torn tail(s) tolerated, %d corrupt skipped, %d quarantined)",
			rep.TornTails, rep.CorruptSegments, rep.Quarantined)
	}
	fmt.Fprintln(out)
	if len(records) == 0 {
		return fmt.Errorf("journal holds no records")
	}

	forest, err := dataset.Forest(dataset.ForestConfig{Rows: o.rows, QuantAttrs: 12, BinaryAttrs: 4, Seed: o.seed})
	if err != nil {
		return err
	}
	db := table.NewDB()
	db.MustAdd(forest)

	ests, err := loadEstimators(o, db)
	if err != nil {
		return err
	}
	if len(ests) == 0 && o.deriveCanary <= 0 {
		return fmt.Errorf("nothing to do: give -snapshot and/or -store (or -derive-canary)")
	}

	reports := make([]replay.Report, 0, len(ests))
	for _, ne := range ests {
		r := replay.Replay(context.Background(), ne.est, records)
		r.Model = ne.name // registry-style name, not the estimator's self-description
		reports = append(reports, r)
	}

	if o.asJSON {
		doc := map[string]any{"journal": rep, "reports": reports}
		if o.deriveCanary > 0 {
			doc["canary"] = canaryDoc(records, o)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	for _, r := range reports {
		printReport(out, r)
	}
	if o.deriveCanary > 0 {
		ws := replay.DeriveCanary(records, o.deriveCanary, o.seed)
		fmt.Fprintf(out, "\ntraffic-derived canary (%d of %d requested):\n", len(ws), o.deriveCanary)
		for _, l := range ws {
			fmt.Fprintf(out, "  card=%-8d %s\n", l.Card, l.Query)
		}
	}
	return nil
}

// loadEstimators gathers -snapshot pairs and -store generations.
func loadEstimators(o options, db *table.DB) ([]namedEst, error) {
	var ests []namedEst
	if o.snapshots != "" {
		for _, pair := range strings.Split(o.snapshots, ",") {
			name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" || path == "" {
				return nil, fmt.Errorf("-snapshot wants name=path pairs, got %q", pair)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			est, _, err := estimator.LoadEstimator(bytes.NewReader(data), db)
			if err != nil {
				return nil, fmt.Errorf("load %q from %s: %w", name, path, err)
			}
			ests = append(ests, namedEst{name: name, est: est})
		}
	}
	if o.storeDir != "" {
		st, err := store.Open(o.storeDir, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("open store %s: %w", o.storeDir, err)
		}
		for _, g := range st.Generations() {
			payload, man, err := st.Read(g.Number)
			if err != nil {
				continue // rotted since Open; the lifecycle quarantines these
			}
			est, _, err := estimator.LoadEstimator(bytes.NewReader(payload), db)
			if err != nil {
				continue
			}
			name := fmt.Sprintf("gen-%d", g.Number)
			if man.Name != "" {
				name += " (" + man.Name + ")"
			}
			ests = append(ests, namedEst{name: name, est: est})
		}
	}
	return ests, nil
}

func canaryDoc(records []journal.Record, o options) []map[string]any {
	ws := replay.DeriveCanary(records, o.deriveCanary, o.seed)
	out := make([]map[string]any, len(ws))
	for i, l := range ws {
		out[i] = map[string]any{"sql": l.Query.String(), "card": l.Card}
	}
	return out
}

func printReport(out io.Writer, r replay.Report) {
	fmt.Fprintf(out, "\nmodel %s\n", r.Model)
	fmt.Fprintf(out, "  records %d | scored %d | unlabeled %d | unparsed %d | failed %d\n",
		r.Records, r.Scored, r.Unlabeled, r.Unparsed, r.Failed)
	if r.Scored == 0 {
		fmt.Fprintln(out, "  no labeled records to score")
		return
	}
	fmt.Fprintf(out, "  q-error median %.3f | p95 %.3f | max %.3f\n", r.Median, r.P95, r.Max)
	keys := make([]string, 0, len(r.PerTable))
	for k := range r.PerTable {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ts := r.PerTable[k]
		fmt.Fprintf(out, "  %-24s %5d queries | median %.3f | p95 %.3f | max %.3f\n",
			k, ts.Queries, ts.Median, ts.P95, ts.Max)
	}
}
