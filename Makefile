GO ?= go

.PHONY: build test vet race check fmt fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full test suite under
# the race detector. The resilience layer runs estimators on watched
# goroutines and labeling/training now fan out across worker pools
# (internal/parallel, exec.CountManyWorkers, gb/nn Workers), so
# race-cleanliness is a correctness property here, not a nicety.
check: vet race

# bench compares the sequential and parallel hot paths (labeling, GB
# training, NN training) and writes BENCH_parallel.json. All three paths are
# bit-identical across worker counts; the report is wall-clock only.
bench:
	$(GO) run ./cmd/parbench -out BENCH_parallel.json

fmt:
	gofmt -l -w .

# Explore the parser fuzz target (runs until interrupted).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse
