GO ?= go

.PHONY: build test vet race check ci serve-smoke fmt fuzz fuzz-serve fuzz-store fuzz-journal soak bench bench-cache bench-journal bench-infer chaos-train lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full test suite under
# the race detector. The resilience layer runs estimators on watched
# goroutines and labeling/training now fan out across worker pools
# (internal/parallel, exec.CountManyWorkers, gb/nn Workers), so
# race-cleanliness is a correctness property here, not a nicety.
check: vet race

# ci is the one-shot pipeline entry point: vet, build everything, then the
# suite under the race detector in -short mode — the crash/chaos sweeps
# (internal/store, internal/resilience/faultinject) collapse to one seed per
# fault point so the pipeline stays fast. `make check` runs the default
# width; `make soak` runs the wide sweep. staticcheck and govulncheck run
# when installed and are skipped (not failed) when absent, so the target
# works in hermetic containers without network access.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -short ./...
	$(GO) test -fuzz=FuzzJournalRead -fuzztime=5s ./internal/journal
	$(GO) run ./cmd/infbench -quick -out BENCH_infer.quick.json
	$(MAKE) lint

# lint runs the optional static analyzers. Both are gated on availability:
# neither tool ships with the toolchain, and ci must not require a network
# fetch to pass.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipped"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipped"; fi

# chaos-train is the self-healing acceptance run: injected drift trips the
# monitor, the retraining job is crashed mid-epoch twice (process crash,
# then a torn checkpoint write), and the test demands resume-from-checkpoint,
# a canary-gated publish, and zero quarantined generations — under the race
# detector, with goroutine-leak verification.
chaos-train:
	$(GO) test -race -run 'SelfHealing|Checkpoint|Supervisor|QError|Domain|Monitor' \
		./internal/trainer/... ./internal/drift/... ./internal/store/... \
		./internal/ml/gb/... ./internal/ml/nn/... ./internal/ml/mscn/...

# serve-smoke boots the estimation daemon on a random port, fires a single
# and a batched estimate, scrapes /metrics, and shuts down cleanly — an
# end-to-end check of the serving stack (internal/serve + cmd/cardestd).
serve-smoke:
	$(GO) run ./cmd/cardestd -smoke -rows 2000 -train 800 -entries 16

# bench compares the sequential and parallel hot paths (labeling, GB
# training, NN training) and writes BENCH_parallel.json, then runs the
# serving-cache replay and writes BENCH_serve_cache.json. All three parallel
# paths are bit-identical across worker counts; the report is wall-clock only.
bench:
	$(GO) run ./cmd/parbench -out BENCH_parallel.json -cache-out BENCH_serve_cache.json

# bench-cache replays a repeated workload through the HTTP estimate handler
# three ways — cache off, cold cache, warm cache — and writes the throughput
# comparison (cold vs. warm vs. off) to BENCH_serve_cache.json.
bench-cache:
	$(GO) run ./cmd/parbench -cache-only -cache-out BENCH_serve_cache.json

# bench-journal measures the feedback journal: durable append throughput
# with batched fsync vs. one fsync per record (the justification for the
# journal's batching writer), and replay throughput in queries/sec. Real
# disk, real fsyncs; writes BENCH_journal.json.
bench-journal:
	$(GO) run ./cmd/journalbench -out BENCH_journal.json

# bench-infer measures the compiled inference fast path against the
# pre-flattening reference implementations — gb/nn single-vector predict,
# featurization into a reused buffer, and the amortized estimator batch
# path — and writes the before/after report to BENCH_infer.json. All fast
# paths are bit-identical to their references (see the differential tests
# next to each); the report compares wall-clock and steady-state allocations.
bench-infer:
	$(GO) run ./cmd/infbench -out BENCH_infer.json

fmt:
	gofmt -l -w .

# Explore the parser and journal-reader fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse
	$(GO) test -fuzz=FuzzJournalRead -fuzztime=30s ./internal/journal

# Fuzz the HTTP estimate handler: malformed SQL/JSON must yield 4xx, never
# a 5xx or a panic.
fuzz-serve:
	$(GO) test -fuzz=FuzzEstimateHandler -fuzztime=30s ./internal/serve

# Fuzz the persistence loaders: LoadEstimator must never panic on mutated
# snapshot bytes — the property the crash-safe store's recovery path leans
# on when it replays whatever survived a crash.
fuzz-store:
	$(GO) test -fuzz=FuzzLoadEstimator -fuzztime=30s ./internal/estimator

# Fuzz the journal segment scanner: arbitrary mutations of segment bytes
# must classify as clean / truncated / corrupt — never panic, never trust
# damaged frames. This is what journal recovery and cmd/replay lean on.
fuzz-journal:
	$(GO) test -fuzz=FuzzJournalRead -fuzztime=30s ./internal/journal

# soak is the wide crash/chaos sweep: every filesystem fault kind (crash,
# torn write, ENOSPC, short read, bit flip) at every mutating/reading
# operation ordinal, QFE_SOAK widening the per-point seed sweep, all under
# the race detector, plus the recovery and canary suites end to end.
soak:
	QFE_SOAK=1 $(GO) test -race -run 'Crash|Chaos|Fault|Sweep|Recover|Canary|Rollback|Supervisor' \
		./internal/store/... ./internal/resilience/faultinject/... ./internal/serve/... \
		./internal/journal/... ./cmd/cardestd/...
