GO ?= go

.PHONY: build test vet race check fmt fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full test suite under
# the race detector. The resilience layer runs estimators on watched
# goroutines, so race-cleanliness is a correctness property here, not a nicety.
check: vet race

fmt:
	gofmt -l -w .

# Explore the parser fuzz target (runs until interrupted).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse
