// Package qfe is a from-scratch Go reproduction of "Enhanced Featurization
// of Queries with Mixed Combinations of Predicates for ML-based Cardinality
// Estimation" (Müller, Woltmann, Lehner — EDBT 2023).
//
// The paper's contribution — four query featurization techniques (QFTs)
// that encode a query's selection predicates into fixed-length numeric
// vectors for learned cardinality estimators — lives in internal/core.
// Everything the evaluation depends on is rebuilt here as well: a SQL
// parser for the paper's query class (internal/sqlparse), an in-memory
// column store and exact COUNT(*) executor (internal/table, internal/exec),
// gradient-boosting / feed-forward / multi-set-convolutional regressors
// (internal/ml/...), local and global estimator deployments plus the
// Postgres-style and sampling baselines (internal/estimator), synthetic
// stand-ins for the forest-covertype and IMDb datasets
// (internal/dataset), workload generators and exact labeling
// (internal/workload), a cardinality-driven join-order optimizer and
// executor for the end-to-end experiment (internal/engine), and an
// experiment harness regenerating every table and figure of the paper's
// Section 5 (internal/bench).
//
// Start with README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each evaluation artifact:
//
//	go test -bench=Figure1 -benchtime=1x .
//	QFE_SCALE=smoke go test -bench=. -benchtime=1x .
//
// or run them all through the CLI: go run ./cmd/benchrunner.
package qfe
